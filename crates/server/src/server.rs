//! The job server: HTTP endpoint routing, the in-memory job registry, the
//! dispatcher workers, durable queue records, crash recovery, and drain.
//!
//! Layering: each accepted connection parses one request ([`crate::http`])
//! and routes it here; submissions pass admission control
//! ([`crate::admission`]) and are durably recorded under `<root>/queue/`
//! *before* the client sees a 202; dispatcher threads pull admitted jobs in
//! weighted fair-share order and execute them through
//! [`ClaptonService::execute_admitted`], which owns artifacts, round
//! checkpoints, and the bit-identical resume contract. The server adds no
//! state of its own to the artifact format — that is what makes a
//! SIGKILL'd server recoverable by a plain rescan.

use crate::admission::{AdmissionConfig, AdmissionQueue, AdmitError, Shed};
use crate::events::EventLog;
use crate::http::{self, EventStream, ReadOutcome};
use clapton_error::ClaptonError;
use clapton_runtime::{failpoint, Artifact, CancelToken, RunDirectory, WorkerPool};
use clapton_service::{
    AdmittedJob, ClaptonService, JobArtifactState, JobLeaseView, JobSpec, Report, TerminalState,
    TELEMETRY_ARTIFACT,
};
use clapton_telemetry::SpanNode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything a [`Server`] needs to come up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Durable state root: artifacts under `<root>/artifacts`, queue
    /// records under `<root>/queue`.
    pub root: PathBuf,
    /// Dispatcher threads executing jobs (`0` = admission-only: jobs queue
    /// but never run — used by the submission-latency benchmark).
    pub dispatchers: usize,
    /// Threads in the shared compute [`WorkerPool`].
    pub pool_workers: usize,
    /// Admission policy.
    pub admission: AdmissionConfig,
    /// How long [`ServerHandle::drain`] lets in-flight jobs run to
    /// completion before suspending them at their next round boundary.
    pub drain_timeout: Duration,
    /// Work-queue lease TTL: how long an unheartbeated `claim.json` on a
    /// job's artifact directory stays authoritative before a peer (or the
    /// next server life) may take the job over. Every process sharing the
    /// artifact root should agree on this value.
    pub lease_ttl: Duration,
    /// Per-connection socket read/write timeout. A client that stalls
    /// mid-request (slow-loris) or stops reading a response is cut off
    /// after this long instead of pinning a connection thread forever;
    /// read timeouts answer 408. Zero disables the timeouts.
    pub request_timeout: Duration,
}

impl ServerConfig {
    /// A loopback config rooted at `root` with two dispatchers.
    pub fn new(root: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            root: root.into(),
            dispatchers: 2,
            pool_workers: 2,
            admission: AdmissionConfig::default(),
            drain_timeout: Duration::from_secs(5),
            lease_ttl: clapton_runtime::DEFAULT_LEASE_TTL,
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// The durable record of one admitted job, written to
/// `<root>/queue/<id>.json` before the submitter sees a 202.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueRecord {
    /// Server-assigned job id (`job-000001`, …).
    pub id: String,
    /// Monotonic admission sequence number (recovery re-queues in order).
    pub seq: u64,
    /// Owning tenant.
    pub tenant: String,
    /// The submitted spec, verbatim.
    pub spec: JobSpec,
}

/// The JSON body of every job-describing response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobStatusBody {
    /// Server-assigned job id.
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Job display name.
    pub name: String,
    /// `queued`, `running`, `cancelling`, `suspended`, `done`, `cancelled`,
    /// or `failed`.
    pub state: String,
    /// Position in the dispatch order (1-based), once a dispatcher picked
    /// the job up — the observable output of fair-share scheduling.
    pub dispatch_seq: Option<u64>,
    /// Completed GA rounds, for suspended/cancelled jobs.
    pub rounds: Option<usize>,
    /// Failure detail, for failed jobs.
    pub detail: Option<String>,
    /// The report, once the job is done.
    pub report: Option<Report>,
}

/// The JSON body of an error response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable cause.
    pub error: String,
}

/// The JSON body of `DELETE /v1/cache`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheFlushBody {
    /// Entries dropped by the flush.
    pub cleared: u64,
}

/// The JSON body of `GET /healthz`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthBody {
    /// Liveness: the process answered at all.
    pub ok: bool,
    /// Readiness: accepting new submissions (false once a drain begins).
    pub ready: bool,
}

/// The JSON body of `GET /v1/jobs/{id}/trace`: the job's reassembled
/// span forest, read back from the `telemetry.jsonl` artifact the service
/// wrote when the job executed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceBody {
    /// Server-assigned job id.
    pub id: String,
    /// Root spans (usually one `job` span), children nested and sorted by
    /// start time.
    pub spans: Vec<SpanNode>,
}

/// One tenant's row in the [`QueueBody`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantBody {
    /// Tenant name.
    pub tenant: String,
    /// Fair-share weight.
    pub weight: f64,
    /// Jobs admitted but not yet dispatched.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs that reached a terminal state.
    pub completed: u64,
}

/// One job's row in the [`QueueBody`]: queue state plus whatever lease the
/// work-queue protocol currently records on its artifact directory (the
/// owner may be this server, a `suite-runner` shard worker, or a peer
/// server sharing the artifact root).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobQueueRow {
    /// Server-assigned job id.
    pub id: String,
    /// Job display name.
    pub name: String,
    /// `queued`, `running`, `cancelling`, `suspended`, `done`, `cancelled`,
    /// or `failed`.
    pub state: String,
    /// Lease owner, heartbeat age, staleness, and completed rounds read
    /// from the job's artifact directory.
    pub lease: JobLeaseView,
}

/// The JSON body of `GET /v1/queue`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueBody {
    /// Jobs admitted but not yet dispatched, across tenants.
    pub depth: usize,
    /// The admission bound on `depth`.
    pub capacity: usize,
    /// Whether submissions are currently admitted.
    pub accepting: bool,
    /// Dispatcher threads.
    pub dispatchers: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Threads in the shared compute pool.
    pub pool_workers: usize,
    /// `running / dispatchers` (0 when admission-only).
    pub saturation: f64,
    /// Per-tenant usage, sorted by tenant name.
    pub tenants: Vec<TenantBody>,
    /// Per-job state and lease rows, sorted by job id.
    pub jobs: Vec<JobQueueRow>,
}

/// What [`ServerHandle::drain`] left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs that reached `done` over the server's lifetime.
    pub completed: usize,
    /// Jobs suspended at a round checkpoint for the next server life.
    pub suspended: usize,
    /// Jobs still queued on disk for the next server life.
    pub requeued: usize,
}

#[derive(Debug)]
enum JobState {
    Queued,
    Running,
    Suspended(usize),
    Done(Box<Report>),
    Cancelled(usize),
    Failed(String),
}

struct JobEntry {
    id: String,
    tenant: String,
    name: String,
    admitted: AdmittedJob,
    cancel: CancelToken,
    events: Arc<EventLog>,
    state: Mutex<JobState>,
    dispatched: Mutex<Option<u64>>,
    /// Failed execution attempts so far (see [`MAX_JOB_ATTEMPTS`]).
    attempts: AtomicUsize,
}

impl JobEntry {
    fn status_body(&self) -> JobStatusBody {
        let state = self.state.lock().expect("job state");
        let (state_name, rounds, detail, report) = match &*state {
            JobState::Queued => ("queued", None, None, None),
            JobState::Running if self.cancel.is_cancelled() => ("cancelling", None, None, None),
            JobState::Running => ("running", None, None, None),
            JobState::Suspended(rounds) => ("suspended", Some(*rounds), None, None),
            JobState::Done(report) => ("done", None, None, Some((**report).clone())),
            JobState::Cancelled(rounds) => ("cancelled", Some(*rounds), None, None),
            JobState::Failed(detail) => ("failed", None, Some(detail.clone()), None),
        };
        JobStatusBody {
            id: self.id.clone(),
            tenant: self.tenant.clone(),
            name: self.name.clone(),
            state: state_name.to_string(),
            dispatch_seq: *self.dispatched.lock().expect("dispatch seq"),
            rounds,
            detail,
            report,
        }
    }

    fn state_label(&self) -> &'static str {
        match &*self.state.lock().expect("job state") {
            JobState::Queued => "queued",
            JobState::Running if self.cancel.is_cancelled() => "cancelling",
            JobState::Running => "running",
            JobState::Suspended(_) => "suspended",
            JobState::Done(_) => "done",
            JobState::Cancelled(_) => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(
            &*self.state.lock().expect("job state"),
            JobState::Done(_) | JobState::Cancelled(_) | JobState::Failed(_)
        )
    }
}

/// How many times a dispatcher re-attempts a job whose execution failed
/// before recording a terminal `failed` state. Transient faults — a
/// quarantined-then-recovered artifact, an injected failpoint error, a
/// flaky shared filesystem — cost a retry from the last round checkpoint,
/// not the job.
const MAX_JOB_ATTEMPTS: usize = 3;

/// The registry key claiming an artifact directory for a live job.
fn dir_key(admitted: &AdmittedJob) -> String {
    admitted
        .artifact_dir()
        .expect("server always persists artifacts")
        .display()
        .to_string()
}

/// Bumps `clapton_jobs_admitted_total{tenant}` — fresh admissions only
/// (joins of an already-active job and answered-from-artifact replays
/// consume no queue slot and are not counted).
fn count_admitted(tenant: &str) {
    clapton_telemetry::registry()
        .counter_with(
            "clapton_jobs_admitted_total",
            "Jobs freshly admitted to the durable queue, by tenant.",
            &[("tenant", tenant)],
        )
        .inc();
}

/// Bumps `clapton_jobs_rejected_total{tenant,reason}` for a shed or
/// conflicting submission.
fn count_rejected(tenant: &str, reason: &str) {
    clapton_telemetry::registry()
        .counter_with(
            "clapton_jobs_rejected_total",
            "Submissions refused at admission, by tenant and reason.",
            &[("tenant", tenant), ("reason", reason)],
        )
        .inc();
}

/// Bumps `clapton_jobs_recovery_leased_defers_total{owner}` when the
/// startup recovery scan finds a queue record whose artifact lease is
/// held by a peer: the job re-registers under its original id, but
/// dispatch defers until the lease is released or goes stale.
fn count_recovery_leased_defer(owner: &str) {
    clapton_telemetry::registry()
        .counter_with(
            "clapton_jobs_recovery_leased_defers_total",
            "Queue records found peer-leased at recovery; dispatch deferred.",
            &[("owner", owner)],
        )
        .inc();
}

/// Bumps `clapton_http_request_timeouts_total` when a connection's read
/// timeout fires before a complete request arrives.
fn count_request_timeout() {
    clapton_telemetry::registry()
        .counter(
            "clapton_http_request_timeouts_total",
            "Connections cut off by the per-request socket read timeout.",
        )
        .inc();
}

/// Bumps `clapton_jobs_finished_total{tenant,outcome}` when a dispatched
/// job reaches a terminal (or drain-suspended) state.
fn count_finished(tenant: &str, outcome: &str) {
    clapton_telemetry::registry()
        .counter_with(
            "clapton_jobs_finished_total",
            "Jobs that left the dispatcher, by tenant and outcome.",
            &[("tenant", tenant), ("outcome", outcome)],
        )
        .inc();
}

#[derive(Default)]
struct Registry {
    jobs: HashMap<String, Arc<JobEntry>>,
    /// Artifact-directory path → active (queued/running) job id, so a
    /// resubmission of an in-flight spec joins the existing job instead of
    /// double-running against the same artifact directory.
    active_by_dir: HashMap<String, String>,
}

struct ServerInner {
    config: ServerConfig,
    service: ClaptonService,
    queue: AdmissionQueue,
    registry: Mutex<Registry>,
    seq: AtomicU64,
    dispatch_counter: AtomicU64,
    running: AtomicUsize,
    shutting_down: AtomicBool,
    stopped: AtomicBool,
    queue_dir: PathBuf,
    dispatchers: Mutex<Vec<JoinHandle<()>>>,
}

/// The job server. [`Server::bind`] recovers durable state and starts the
/// dispatchers; [`Server::serve`] runs the accept loop until
/// [`ServerHandle::begin_shutdown`] (or [`ServerHandle::drain`]) stops it.
pub struct Server {
    inner: Arc<ServerInner>,
    listener: TcpListener,
    addr: SocketAddr,
}

/// A cloneable control handle: address introspection and shutdown/drain.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
}

impl Server {
    /// Builds the service, scans `<root>/queue` to re-admit every job a
    /// previous server life accepted but did not finish, binds the
    /// listener, and starts the dispatcher threads.
    ///
    /// # Errors
    ///
    /// Root/artifact directory creation, queue-record parsing, or socket
    /// binding failures.
    pub fn bind(config: ServerConfig) -> Result<Server, ClaptonError> {
        let pool = Arc::new(WorkerPool::with_workers(config.pool_workers.max(1)));
        let service = ClaptonService::with_pool(pool)
            .with_lease_ttl(config.lease_ttl)
            .with_artifacts(config.root.join("artifacts"))?
            .with_cache_under(config.root.join("artifacts"))?;
        let queue_dir = config.root.join("queue");
        std::fs::create_dir_all(&queue_dir).map_err(ClaptonError::Io)?;
        let listener = TcpListener::bind(&config.addr).map_err(ClaptonError::Io)?;
        let addr = listener.local_addr().map_err(ClaptonError::Io)?;
        let inner = Arc::new(ServerInner {
            queue: AdmissionQueue::new(config.admission.clone()),
            registry: Mutex::new(Registry::default()),
            seq: AtomicU64::new(0),
            dispatch_counter: AtomicU64::new(0),
            running: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            queue_dir,
            dispatchers: Mutex::new(Vec::new()),
            service,
            config,
        });
        inner.recover()?;
        let mut dispatchers = inner.dispatchers.lock().expect("dispatcher handles");
        for idx in 0..inner.config.dispatchers {
            let inner = Arc::clone(&inner);
            dispatchers.push(
                std::thread::Builder::new()
                    .name(format!("clapton-dispatch-{idx}"))
                    .spawn(move || inner.dispatcher_loop())
                    .map_err(ClaptonError::Io)?,
            );
        }
        drop(dispatchers);
        Ok(Server {
            inner,
            listener,
            addr,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle that outlives the accept loop.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
            addr: self.addr,
        }
    }

    /// Accepts and serves connections until shutdown begins. Each
    /// connection is one request (`Connection: close`), handled on its own
    /// thread.
    ///
    /// # Errors
    ///
    /// Fatal listener failures only; per-connection errors are contained.
    pub fn serve(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            // The acceptor outlives `begin_shutdown` so `/healthz` (and
            // status queries) keep answering — with `ready: false` — for
            // the whole drain window; only a finished drain stops it.
            if self.inner.stopped.load(Ordering::SeqCst) {
                // The wake connection (or any racer) is dropped unanswered.
                return Ok(());
            }
            let mut stream = match conn {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let timeout = self.inner.config.request_timeout;
            if !timeout.is_zero() {
                // A stalled or slow-loris peer times out instead of pinning
                // this connection's thread; read timeouts answer 408.
                let _ = stream.set_read_timeout(Some(timeout));
                let _ = stream.set_write_timeout(Some(timeout));
            }
            let inner = Arc::clone(&self.inner);
            let _ = std::thread::Builder::new()
                .name("clapton-conn".to_string())
                .spawn(move || {
                    let _ = inner.handle_connection(&mut stream);
                });
        }
        Ok(())
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops admissions and flips `/healthz` readiness to `false`.
    /// Idempotent; does not wait for in-flight jobs, and the accept loop
    /// keeps answering (status, health, metrics) until a [`drain`] ends —
    /// see [`ServerHandle::drain`].
    ///
    /// [`drain`]: ServerHandle::drain
    pub fn begin_shutdown(&self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.queue.close();
    }

    /// Graceful drain: stop admissions, let in-flight jobs run for up to
    /// `drain_timeout`, then suspend the stragglers at their next round
    /// boundary (their checkpoints make the next server life resume them
    /// bit-identically), join the dispatchers, and finally stop the accept
    /// loop.
    pub fn drain(&self) -> DrainSummary {
        self.begin_shutdown();
        let deadline = Instant::now() + self.inner.config.drain_timeout;
        while self.inner.running.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        {
            let registry = self.inner.registry.lock().expect("job registry");
            for entry in registry.jobs.values() {
                if matches!(*entry.state.lock().expect("job state"), JobState::Running) {
                    entry.cancel.suspend();
                }
            }
        }
        let handles: Vec<JoinHandle<()>> = self
            .inner
            .dispatchers
            .lock()
            .expect("dispatcher handles")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        let registry = self.inner.registry.lock().expect("job registry");
        let mut summary = DrainSummary {
            completed: 0,
            suspended: 0,
            requeued: 0,
        };
        for entry in registry.jobs.values() {
            match &*entry.state.lock().expect("job state") {
                JobState::Done(_) => summary.completed += 1,
                JobState::Suspended(_) => summary.suspended += 1,
                JobState::Queued => summary.requeued += 1,
                _ => {}
            }
        }
        drop(registry);
        self.inner.stopped.store(true, Ordering::SeqCst);
        // Self-connect so a blocking accept() observes the stop now rather
        // than at the next real client.
        let _ = TcpStream::connect(self.addr);
        summary
    }

    /// Current queue statistics (same data as `GET /v1/queue`).
    pub fn queue_body(&self) -> QueueBody {
        self.inner.queue_body()
    }
}

impl ServerInner {
    /// Re-admits every durable queue record from a previous server life.
    fn recover(self: &Arc<ServerInner>) -> Result<(), ClaptonError> {
        let queue_records = RunDirectory::create(&self.queue_dir)?;
        let mut records: Vec<QueueRecord> = Vec::new();
        for dirent in std::fs::read_dir(&self.queue_dir).map_err(ClaptonError::Io)? {
            let path = dirent.map_err(ClaptonError::Io)?.path();
            // Skips leftover `.tmp` writes and `.corrupt-<ts>` quarantines.
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            // A torn or garbled record is quarantined and skipped rather
            // than refusing to start the server: the job's artifacts (spec,
            // checkpoints, report) are intact, so resubmitting the same
            // spec re-admits or answers it — one queue entry is the blast
            // radius, never the server or the job's banked rounds.
            match queue_records.load::<QueueRecord>(name)? {
                Artifact::Valid(record) => records.push(record),
                Artifact::Missing | Artifact::Corrupt { .. } => continue,
            }
        }
        records.sort_by_key(|r| r.seq);
        for record in records {
            self.seq.fetch_max(record.seq, Ordering::SeqCst);
            let admitted = self.service.admit(record.spec.clone())?;
            // A peer's lease on this job's artifacts (another server, a
            // suite-runner shard worker, or a SIGKILL'd previous life whose
            // claim has not yet gone stale) must not stop the job from
            // re-registering under its original id — clients keep polling
            // it. Execution still waits its turn: the dispatcher's `Leased`
            // arm keeps the job queued until the lease is released or
            // expires, so this life never races the peer's artifact writes.
            if let Some(owner) = self.service.leased_by_peer(&admitted)? {
                count_recovery_leased_defer(&owner);
            }
            let state = match self.service.inspect(&admitted)? {
                JobArtifactState::Done(report) => JobState::Done(report),
                JobArtifactState::Cancelled { rounds } => JobState::Cancelled(rounds),
                JobArtifactState::Failed { detail } => JobState::Failed(detail),
                // A fresh job the persistent store has already solved (the
                // artifacts may be gone, but the cache survives lives)
                // recovers straight to done — no requeue, no pool time.
                JobArtifactState::Fresh => match self.service.answer_from_cache(&admitted)? {
                    Some(report) => JobState::Done(Box::new(report)),
                    None => JobState::Queued,
                },
                JobArtifactState::InFlight => JobState::Queued,
            };
            let requeue = matches!(state, JobState::Queued);
            let events = Arc::new(EventLog::new());
            if !requeue {
                events.close();
            }
            let entry = Arc::new(JobEntry {
                id: record.id.clone(),
                tenant: record.tenant.clone(),
                name: admitted.job().name.clone(),
                cancel: CancelToken::new(),
                dispatched: Mutex::new(None),
                state: Mutex::new(state),
                attempts: AtomicUsize::new(0),
                admitted,
                events,
            });
            let mut registry = self.registry.lock().expect("job registry");
            if requeue {
                if let Some(dir) = entry.admitted.artifact_dir() {
                    registry
                        .active_by_dir
                        .insert(dir.display().to_string(), record.id.clone());
                }
                self.queue.readmit(&record.tenant, record.id.clone());
            }
            registry.jobs.insert(record.id, entry);
        }
        Ok(())
    }

    fn entry(&self, id: &str) -> Option<Arc<JobEntry>> {
        self.registry
            .lock()
            .expect("job registry")
            .jobs
            .get(id)
            .cloned()
    }

    fn retire_active(&self, entry: &JobEntry) {
        if let Some(dir) = entry.admitted.artifact_dir() {
            self.registry
                .lock()
                .expect("job registry")
                .active_by_dir
                .remove(&dir.display().to_string());
        }
    }

    fn dispatcher_loop(self: &Arc<ServerInner>) {
        while let Some((tenant, id)) = self.queue.pop() {
            let Some(entry) = self.entry(&id) else {
                continue;
            };
            if entry.cancel.is_cancelled() {
                // Cancelled between admission and dispatch.
                self.finish_cancelled(&entry, 0);
                self.queue.note_finished(&tenant);
                continue;
            }
            *entry.state.lock().expect("job state") = JobState::Running;
            *entry.dispatched.lock().expect("dispatch seq") =
                Some(self.dispatch_counter.fetch_add(1, Ordering::SeqCst) + 1);
            self.running.fetch_add(1, Ordering::SeqCst);
            let (tx, rx) = std::sync::mpsc::channel();
            let forwarder = {
                let events = Arc::clone(&entry.events);
                std::thread::spawn(move || {
                    for event in rx {
                        events.push(event);
                    }
                })
            };
            let result =
                self.service
                    .execute_admitted(&entry.admitted, Some(tx), entry.cancel.clone());
            let _ = forwarder.join();
            self.running.fetch_sub(1, Ordering::SeqCst);
            match result {
                Ok(report) => {
                    *entry.state.lock().expect("job state") = JobState::Done(Box::new(report));
                    entry.events.close();
                    self.retire_active(&entry);
                    count_finished(&tenant, "done");
                }
                Err(ClaptonError::Cancelled { rounds }) => {
                    *entry.state.lock().expect("job state") = JobState::Cancelled(rounds);
                    entry.events.close();
                    self.retire_active(&entry);
                    count_finished(&tenant, "cancelled");
                }
                Err(ClaptonError::Suspended { rounds }) => {
                    if self.shutting_down.load(Ordering::SeqCst) {
                        // Drain: the checkpoint is on disk and the queue
                        // record survives; the next server life resumes it.
                        *entry.state.lock().expect("job state") = JobState::Suspended(rounds);
                        entry.events.close();
                        count_finished(&tenant, "suspended");
                    } else {
                        // Budget suspension: the server owns the resubmit
                        // loop, so the job goes straight back in line.
                        *entry.state.lock().expect("job state") = JobState::Queued;
                        self.queue.readmit(&tenant, id);
                    }
                }
                Err(ClaptonError::Leased { .. }) => {
                    // A live peer beat this dispatcher to the job's lease.
                    // The artifacts are untouched; put the job back in line
                    // and let a later dispatch find the lease released (or
                    // the job finished by the peer). The brief sleep keeps a
                    // single-job queue from spinning against a held lease.
                    *entry.state.lock().expect("job state") = JobState::Queued;
                    self.queue.readmit(&tenant, id);
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(other) => {
                    let tried = entry.attempts.fetch_add(1, Ordering::SeqCst) + 1;
                    if tried < MAX_JOB_ATTEMPTS {
                        // Presumed transient: back in line, resuming from
                        // the last valid round checkpoint. The sleep keeps
                        // a single-job queue from hot-spinning on a fault
                        // that needs a moment (or a peer) to clear.
                        *entry.state.lock().expect("job state") = JobState::Queued;
                        self.queue.readmit(&tenant, id);
                        std::thread::sleep(Duration::from_millis(50));
                    } else {
                        let detail = other.to_string();
                        let _ = self.service.mark_failed(&entry.admitted, &detail);
                        *entry.state.lock().expect("job state") = JobState::Failed(detail);
                        entry.events.close();
                        self.retire_active(&entry);
                        count_finished(&tenant, "failed");
                    }
                }
            }
            self.queue.note_finished(&tenant);
        }
    }

    /// Persists and records a cancellation that won the race against
    /// dispatch (the job never ran; `rounds` completed beforehand).
    fn finish_cancelled(&self, entry: &JobEntry, rounds: usize) {
        if let Some(dir) = entry.admitted.artifact_dir() {
            let state = TerminalState {
                state: "cancelled".to_string(),
                rounds,
                detail: String::new(),
            };
            if let Ok(dir) = RunDirectory::create(dir) {
                let _ = dir.write_json("state.json", &state);
            }
        }
        *entry.state.lock().expect("job state") = JobState::Cancelled(rounds);
        entry.events.close();
        self.retire_active(entry);
        count_finished(&entry.tenant, "cancelled");
    }

    fn queue_body(&self) -> QueueBody {
        let stats = self.queue.stats();
        let running = self.running.load(Ordering::SeqCst);
        let dispatchers = self.config.dispatchers;
        let mut jobs: Vec<JobQueueRow> = {
            let registry = self.registry.lock().expect("job registry");
            registry.jobs.values().cloned().collect::<Vec<_>>()
        }
        .into_iter()
        .map(|entry| JobQueueRow {
            id: entry.id.clone(),
            name: entry.name.clone(),
            state: entry.state_label().to_string(),
            lease: self.service.lease_view(&entry.admitted).unwrap_or_default(),
        })
        .collect();
        jobs.sort_by(|a, b| a.id.cmp(&b.id));
        QueueBody {
            depth: stats.depth,
            capacity: stats.capacity,
            accepting: stats.accepting,
            dispatchers,
            running,
            pool_workers: self.config.pool_workers,
            saturation: if dispatchers == 0 {
                0.0
            } else {
                running as f64 / dispatchers as f64
            },
            tenants: stats
                .tenants
                .into_iter()
                .map(|t| TenantBody {
                    tenant: t.tenant,
                    weight: t.weight,
                    queued: t.queued,
                    running: t.running,
                    completed: t.completed,
                })
                .collect(),
            jobs,
        }
    }

    fn handle_connection(self: &Arc<ServerInner>, stream: &mut TcpStream) -> io::Result<()> {
        let request = match http::read_request(stream) {
            Ok(ReadOutcome::Request(request)) => request,
            Ok(ReadOutcome::Closed) => return Ok(()),
            Ok(ReadOutcome::Malformed(e)) => {
                return self.respond_error(stream, 400, &[], &e.to_string());
            }
            // The socket read timeout fired mid-request: tell the client
            // (best-effort — it may be gone) and free the thread.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                count_request_timeout();
                return self.respond_error(stream, 408, &[], "request read timed out");
            }
            Err(e) => return Err(e),
        };
        let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("POST", ["v1", "jobs"]) => self.handle_submit(stream, &request),
            ("GET", ["v1", "jobs", id]) => self.handle_status(stream, id),
            ("DELETE", ["v1", "jobs", id]) => self.handle_cancel(stream, id),
            ("GET", ["v1", "jobs", id, "events"]) => self.handle_events(stream, id),
            ("GET", ["v1", "jobs", id, "trace"]) => self.handle_trace(stream, id),
            ("GET", ["metrics"]) => self.handle_metrics(stream),
            ("GET", ["v1", "cache"]) => self.handle_cache_stats(stream),
            ("DELETE", ["v1", "cache"]) => self.handle_cache_flush(stream),
            ("GET", ["v1", "queue"]) => {
                let body =
                    serde_json::to_string(&self.queue_body()).expect("queue body serializes");
                http::write_json_response(stream, 200, &[], &body)
            }
            // Liveness is answering at all; readiness flips false the
            // moment a drain begins (load balancers stop routing new
            // submissions while in-flight jobs finish).
            ("GET", ["healthz"]) => {
                let ready = !self.shutting_down.load(Ordering::SeqCst);
                let body = serde_json::to_string(&HealthBody { ok: true, ready })
                    .expect("health body serializes");
                http::write_json_response(stream, if ready { 200 } else { 503 }, &[], &body)
            }
            (
                _,
                ["v1", "jobs"]
                | ["v1", "jobs", _]
                | ["v1", "jobs", _, "events" | "trace"]
                | ["v1", "queue"]
                | ["v1", "cache"]
                | ["metrics"],
            ) => self.respond_error(stream, 405, &[], "method not allowed on this path"),
            _ => self.respond_error(stream, 404, &[], "no such endpoint"),
        }
    }

    fn respond_error(
        &self,
        stream: &mut TcpStream,
        status: u16,
        extra: &[(&str, String)],
        error: &str,
    ) -> io::Result<()> {
        let body = serde_json::to_string(&ErrorBody {
            error: error.to_string(),
        })
        .expect("error body serializes");
        http::write_json_response(stream, status, extra, &body)
    }

    fn respond_entry(
        &self,
        stream: &mut TcpStream,
        status: u16,
        entry: &JobEntry,
    ) -> io::Result<()> {
        let body = serde_json::to_string(&entry.status_body()).expect("status body serializes");
        http::write_json_response(stream, status, &[], &body)
    }

    /// `GET /metrics`: the Prometheus text exposition of the global
    /// telemetry registry, with queue/tenant gauges synced from the
    /// admission queue on every scrape (scrape-time sampling keeps the
    /// admission hot path free of gauge writes).
    fn handle_metrics(&self, stream: &mut TcpStream) -> io::Result<()> {
        let stats = self.queue.stats();
        let registry = clapton_telemetry::registry();
        registry
            .gauge(
                "clapton_queue_depth",
                "Jobs admitted but not yet dispatched, across tenants.",
            )
            .set(stats.depth as f64);
        registry
            .gauge(
                "clapton_server_running_jobs",
                "Jobs currently executing on dispatcher threads.",
            )
            .set(self.running.load(Ordering::SeqCst) as f64);
        for t in &stats.tenants {
            registry
                .gauge_with(
                    "clapton_tenant_queued",
                    "Jobs admitted but not yet dispatched, by tenant.",
                    &[("tenant", &t.tenant)],
                )
                .set(t.queued as f64);
            registry
                .gauge_with(
                    "clapton_tenant_vtime_lag",
                    "Weighted-fair-queueing lag: the queue's virtual clock \
                     minus the tenant's virtual finish time (0 for tenants \
                     keeping pace with their share).",
                    &[("tenant", &t.tenant)],
                )
                .set((stats.vclock - t.vtime).max(0.0));
        }
        // `stats()` refreshes the `clapton_cache_size_bytes` /
        // `clapton_cache_entries` gauges as a side effect, so the scrape
        // reflects the store as it is now.
        if let Some(cache) = self.service.cache() {
            let _ = cache.stats();
        }
        http::write_response(
            stream,
            200,
            "text/plain; version=0.0.4",
            &[],
            &registry.render(),
        )
    }

    /// `GET /v1/cache`: a point-in-time census of the persistent result
    /// store ([`clapton_service::CacheStoreStats`] as JSON).
    fn handle_cache_stats(&self, stream: &mut TcpStream) -> io::Result<()> {
        let Some(cache) = self.service.cache() else {
            return self.respond_error(stream, 404, &[], "no persistent cache attached");
        };
        let body = serde_json::to_string(&cache.stats()).expect("cache stats serialize");
        http::write_json_response(stream, 200, &[], &body)
    }

    /// `DELETE /v1/cache`: drops every cached entry and segment (the
    /// operator's invalidation hammer — e.g. after an engine change that
    /// should obsolete stored results), reporting how many entries went.
    fn handle_cache_flush(&self, stream: &mut TcpStream) -> io::Result<()> {
        let Some(cache) = self.service.cache() else {
            return self.respond_error(stream, 404, &[], "no persistent cache attached");
        };
        match cache.clear() {
            Ok(cleared) => {
                let body = serde_json::to_string(&CacheFlushBody { cleared })
                    .expect("flush body serializes");
                http::write_json_response(stream, 200, &[], &body)
            }
            Err(e) => self.respond_error(stream, 500, &[], &format!("cache flush failed: {e}")),
        }
    }

    /// `GET /v1/jobs/{id}/trace`: the span tree recorded while the job
    /// executed, reassembled from the `telemetry.jsonl` artifact. The
    /// endpoint reads the very file the service wrote, so the two surfaces
    /// can never disagree.
    fn handle_trace(&self, stream: &mut TcpStream, id: &str) -> io::Result<()> {
        let Some(entry) = self.entry(id) else {
            return self.respond_error(stream, 404, &[], "no such job");
        };
        let Some(dir) = entry.admitted.artifact_dir() else {
            return self.respond_error(stream, 404, &[], "job has no artifact directory");
        };
        let text = match std::fs::read_to_string(dir.join(TELEMETRY_ARTIFACT)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return self.respond_error(stream, 404, &[], "no trace recorded for this job");
            }
            Err(e) => return self.respond_error(stream, 500, &[], &e.to_string()),
        };
        let records = match clapton_telemetry::from_jsonl(&text) {
            Ok(records) => records,
            Err(e) => {
                return self.respond_error(stream, 500, &[], &format!("corrupt trace log: {e}"));
            }
        };
        let body = TraceBody {
            id: entry.id.clone(),
            spans: clapton_telemetry::span_tree(&records),
        };
        let body = serde_json::to_string(&body).expect("trace body serializes");
        http::write_json_response(stream, 200, &[], &body)
    }

    fn handle_submit(
        self: &Arc<ServerInner>,
        stream: &mut TcpStream,
        request: &crate::http::Request,
    ) -> io::Result<()> {
        let tenant = request.header("x-tenant").unwrap_or("default").to_string();
        if tenant.is_empty() || tenant.contains(|c: char| c == '/' || c.is_whitespace()) {
            return self.respond_error(stream, 400, &[], "invalid X-Tenant header");
        }
        if self.shutting_down.load(Ordering::SeqCst) {
            count_rejected(&tenant, "draining");
            return self.respond_error(stream, 503, &[], "server is draining");
        }
        let Ok(text) = request.body_text() else {
            return self.respond_error(stream, 400, &[], "request body is not UTF-8");
        };
        let spec: JobSpec = match serde_json::from_str(text) {
            Ok(spec) => spec,
            Err(e) => {
                return self.respond_error(stream, 400, &[], &format!("malformed JobSpec: {e}"));
            }
        };
        let admitted = match self.service.admit(spec.clone()) {
            Ok(admitted) => admitted,
            Err(e @ ClaptonError::Conflict { .. }) => {
                count_rejected(&tenant, "conflict");
                return self.respond_error(stream, 409, &[], &e.to_string());
            }
            Err(e @ (ClaptonError::Spec(_) | ClaptonError::Parse { .. })) => {
                count_rejected(&tenant, "invalid_spec");
                return self.respond_error(stream, 400, &[], &e.to_string());
            }
            Err(e) => return self.respond_error(stream, 500, &[], &e.to_string()),
        };
        match self.service.inspect(&admitted) {
            Ok(JobArtifactState::Fresh) => {
                // Warm admission: a spec the persistent store has already
                // solved (in any process sharing this registry) is answered
                // here — no admission tokens, no queue slot, no pool time.
                // The active-job guard matches the answered-from-artifacts
                // branch below: a live entry owns the directory.
                let active = self
                    .registry
                    .lock()
                    .expect("job registry")
                    .active_by_dir
                    .get(&dir_key(&admitted))
                    .cloned();
                if active.is_none() {
                    match self.service.answer_from_cache(&admitted) {
                        Ok(Some(report)) => {
                            let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
                            let entry = self.insert_entry(
                                format!("job-{seq:06}"),
                                tenant,
                                admitted,
                                JobState::Done(Box::new(report)),
                            );
                            return self.respond_entry(stream, 200, &entry);
                        }
                        Ok(None) => {}
                        Err(e) => return self.respond_error(stream, 500, &[], &e.to_string()),
                    }
                }
            }
            Ok(JobArtifactState::InFlight) => {}
            Ok(terminal) => {
                // Answered from artifacts: no admission, no dispatch — but
                // only if no live job owns the directory (the running job
                // is the source of truth while it's in flight).
                let dir_key = dir_key(&admitted);
                let active = self
                    .registry
                    .lock()
                    .expect("job registry")
                    .active_by_dir
                    .get(&dir_key)
                    .cloned();
                if active.is_none() {
                    let state = match terminal {
                        JobArtifactState::Done(report) => JobState::Done(report),
                        JobArtifactState::Cancelled { rounds } => JobState::Cancelled(rounds),
                        JobArtifactState::Failed { detail } => JobState::Failed(detail),
                        JobArtifactState::Fresh | JobArtifactState::InFlight => unreachable!(),
                    };
                    let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
                    let entry = self.insert_entry(format!("job-{seq:06}"), tenant, admitted, state);
                    return self.respond_entry(stream, 200, &entry);
                }
            }
            Err(e) => return self.respond_error(stream, 500, &[], &e.to_string()),
        }
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        let id = format!("job-{seq:06}");
        // The registry entry must exist before the id is published to the
        // dispatchers, and the joined-active check must be atomic with the
        // insertion — otherwise two racing submissions of the same spec
        // would double-run against one artifact directory.
        let entry = match self.try_insert_active(id.clone(), tenant.clone(), admitted) {
            Ok(entry) => entry,
            Err(existing) => {
                // Joining an active job (same spec resubmitted while queued
                // or running) consumes no admission tokens or queue slot.
                return self.respond_entry(stream, 202, &existing);
            }
        };
        let record = QueueRecord {
            id: id.clone(),
            seq,
            tenant: tenant.clone(),
            spec,
        };
        let record_name = format!("{id}.json");
        let admit = self.queue.admit(&tenant, id.clone(), || {
            failpoint::check("server.queue.persist")?;
            // Enveloped + atomic like every other artifact: a crash during
            // the persist leaves either no record or a verifiable one.
            RunDirectory::create(&self.queue_dir)?.write_json(&record_name, &record)
        });
        match admit {
            Ok(_) => {
                count_admitted(&tenant);
                self.respond_entry(stream, 202, &entry)
            }
            Err(shed) => {
                let mut registry = self.registry.lock().expect("job registry");
                registry.jobs.remove(&id);
                registry.active_by_dir.remove(&dir_key(&entry.admitted));
                drop(registry);
                match shed {
                    AdmitError::Shed(Shed::RateLimited { retry_after_secs }) => {
                        count_rejected(&tenant, "rate_limited");
                        self.respond_error(
                            stream,
                            429,
                            &[("Retry-After", retry_after_secs.to_string())],
                            "tenant rate limit exceeded",
                        )
                    }
                    AdmitError::Shed(Shed::QueueFull { depth }) => {
                        count_rejected(&tenant, "queue_full");
                        self.respond_error(
                            stream,
                            429,
                            &[("Retry-After", "1".to_string())],
                            &format!("admission queue full ({depth} jobs)"),
                        )
                    }
                    AdmitError::Shed(Shed::Closed) => {
                        count_rejected(&tenant, "draining");
                        self.respond_error(stream, 503, &[], "server is draining")
                    }
                    AdmitError::Io(e) => self.respond_error(
                        stream,
                        500,
                        &[],
                        &format!("failed to persist queue record: {e}"),
                    ),
                }
            }
        }
    }

    /// Inserts a terminal (never-dispatched) entry: closed event log, not
    /// in the active map.
    fn insert_entry(
        &self,
        id: String,
        tenant: String,
        admitted: AdmittedJob,
        state: JobState,
    ) -> Arc<JobEntry> {
        let events = Arc::new(EventLog::new());
        events.close();
        let entry = Arc::new(JobEntry {
            id: id.clone(),
            name: admitted.job().name.clone(),
            cancel: CancelToken::new(),
            dispatched: Mutex::new(None),
            state: Mutex::new(state),
            attempts: AtomicUsize::new(0),
            tenant,
            admitted,
            events,
        });
        self.registry
            .lock()
            .expect("job registry")
            .jobs
            .insert(id, Arc::clone(&entry));
        entry
    }

    /// Inserts a queued entry and claims its artifact directory, or returns
    /// the live entry already owning that directory.
    fn try_insert_active(
        &self,
        id: String,
        tenant: String,
        admitted: AdmittedJob,
    ) -> Result<Arc<JobEntry>, Arc<JobEntry>> {
        let key = dir_key(&admitted);
        let mut registry = self.registry.lock().expect("job registry");
        if let Some(existing) = registry
            .active_by_dir
            .get(&key)
            .and_then(|id| registry.jobs.get(id))
        {
            return Err(Arc::clone(existing));
        }
        let entry = Arc::new(JobEntry {
            id: id.clone(),
            name: admitted.job().name.clone(),
            cancel: CancelToken::new(),
            dispatched: Mutex::new(None),
            state: Mutex::new(JobState::Queued),
            events: Arc::new(EventLog::new()),
            attempts: AtomicUsize::new(0),
            tenant,
            admitted,
        });
        registry.active_by_dir.insert(key, id.clone());
        registry.jobs.insert(id, Arc::clone(&entry));
        Ok(entry)
    }

    fn handle_status(&self, stream: &mut TcpStream, id: &str) -> io::Result<()> {
        match self.entry(id) {
            Some(entry) => self.respond_entry(stream, 200, &entry),
            None => self.respond_error(stream, 404, &[], &format!("no job {id:?}")),
        }
    }

    fn handle_cancel(&self, stream: &mut TcpStream, id: &str) -> io::Result<()> {
        let Some(entry) = self.entry(id) else {
            return self.respond_error(stream, 404, &[], &format!("no job {id:?}"));
        };
        if entry.is_terminal() {
            return self.respond_entry(stream, 200, &entry);
        }
        // Mark first so a dispatcher that pops the id concurrently skips it.
        entry.cancel.cancel();
        if self.queue.remove(&entry.tenant, id) {
            // Won the race: the job never dispatched.
            self.finish_cancelled(&entry, 0);
            return self.respond_entry(stream, 200, &entry);
        }
        // Already dispatched (or mid-dispatch): the token stops it at the
        // next round boundary.
        self.respond_entry(stream, 202, &entry)
    }

    fn handle_events(&self, stream: &mut TcpStream, id: &str) -> io::Result<()> {
        let Some(entry) = self.entry(id) else {
            return self.respond_error(stream, 404, &[], &format!("no job {id:?}"));
        };
        let mut events = EventStream::begin(stream)?;
        let mut index = 0usize;
        while let Some(event) = entry.events.next(index) {
            index += 1;
            let json = serde_json::to_string(&event).expect("event serializes");
            if events.send(&json).is_err() {
                // Client hung up; nothing left to deliver.
                return Ok(());
            }
        }
        events.finish()
    }
}
