//! The `clapton-client` binary: the server protocol from the command line.
//!
//! ```text
//! clapton-client --addr HOST:PORT [--tenant NAME] [--retries N]
//!                [--retry-base-ms MS] COMMAND [ARGS]
//!
//!   submit SPEC.json            submit a job, print the response
//!   status JOB_ID               one status snapshot
//!   wait JOB_ID [SECS]          poll until terminal (default 600 s)
//!   cancel JOB_ID               request cooperative cancellation
//!   queue                       queue depth, per-tenant usage, and
//!                               per-job lease rows (owner, heartbeat
//!                               age, rounds done)
//!   events JOB_ID               stream events until the job ends
//!   metrics [--raw]             scrape /metrics (table, or raw text)
//!   cache [--flush]             persistent-store stats table, or drop
//!                               every cached entry with --flush
//!   trace JOB_ID                print a finished job's span tree
//!   health                      poll /healthz; exit 0 only when live
//!                               AND ready (CI waits on this instead
//!                               of sleeping)
//!   verify SPEC.json [SECS]     submit + wait, then diff the served
//!                               Report against an in-process run
//! ```
//!
//! `--retries N` turns on capped exponential backoff with deterministic
//! jitter for transient failures (connection refused/reset, 5xx, and 429
//! honoring `Retry-After`); the default is no retries.
//!
//! `verify` is the CI smoke check: the report coming back over the wire
//! must be byte-identical (as canonical JSON) to `ClaptonService::run` on
//! the same spec in this process.

use clapton_server::client::Client;
use clapton_service::{ClaptonService, JobSpec};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: clapton-client --addr HOST:PORT [--tenant NAME] [--retries N] \
         [--retry-base-ms MS] \
         (submit SPEC.json | status ID | wait ID [SECS] | cancel ID | queue \
          | events ID | metrics [--raw] | cache [--flush] | trace ID | health \
          | verify SPEC.json [SECS])"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("clapton-client: {message}");
    std::process::exit(1);
}

fn read_spec(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail(format!("cannot read {path}: {e}")),
    }
}

fn wait_secs(arg: Option<&String>) -> Duration {
    Duration::from_secs(arg.map_or(600, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("bad timeout {s:?}");
            usage()
        })
    }))
}

/// Renders the exposition as an aligned `METRIC | VALUE` table, one row
/// per series. Histogram buckets are folded away — the `_sum`/`_count`
/// series carry the summary — so the table stays scannable.
fn print_metrics_table(text: &str) {
    let samples = match clapton_telemetry::parse_text(text) {
        Ok(samples) => samples,
        Err(e) => fail(format!("unparseable /metrics exposition: {e}")),
    };
    let rows: Vec<(String, String)> = samples
        .iter()
        .filter(|s| !s.name.ends_with("_bucket"))
        .map(|s| {
            let mut name = s.name.clone();
            if !s.labels.is_empty() {
                let labels: Vec<String> =
                    s.labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
                name = format!("{name}{{{}}}", labels.join(","));
            }
            (name, format!("{}", s.value))
        })
        .collect();
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, value) in rows {
        println!("{name:width$}  {value}");
    }
}

/// Prints one span and its children, indented, with millisecond durations.
fn print_span(node: &clapton_telemetry::SpanNode, depth: usize) {
    println!(
        "{:indent$}{} {:.3} ms (thread {})",
        "",
        node.name,
        node.duration_ns() as f64 / 1e6,
        node.thread,
        indent = depth * 2
    );
    for child in &node.children {
        print_span(child, depth + 1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut tenant = None;
    let mut retries = 0u32;
    let mut retry_base_ms = 100u64;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    let parse_num = |flag: &str, value: Option<String>| -> u64 {
        value
            .as_deref()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("{flag} wants a number, got {value:?}");
                usage()
            })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next(),
            "--tenant" => tenant = it.next(),
            "--retries" => retries = parse_num("--retries", it.next()) as u32,
            "--retry-base-ms" => retry_base_ms = parse_num("--retry-base-ms", it.next()),
            "--help" | "-h" => usage(),
            _ => rest.push(arg),
        }
    }
    let Some(addr) = addr else {
        eprintln!("--addr is required");
        usage();
    };
    let mut client = Client::new(addr);
    if let Some(tenant) = tenant {
        client = client.with_tenant(tenant);
    }
    if retries > 0 {
        client = client.with_retries(retries, Duration::from_millis(retry_base_ms));
    }
    let command = rest.first().map(String::as_str).unwrap_or_else(|| usage());
    let outcome = match command {
        "submit" => {
            let path = rest.get(1).unwrap_or_else(|| usage());
            client.submit(&read_spec(path)).map(|response| {
                println!("{} {}", response.status, response.body);
                if !(200..300).contains(&response.status) {
                    std::process::exit(1);
                }
            })
        }
        "status" => {
            let id = rest.get(1).unwrap_or_else(|| usage());
            client.status(id).map(|response| {
                println!("{} {}", response.status, response.body);
            })
        }
        "wait" => {
            let id = rest.get(1).unwrap_or_else(|| usage());
            client.wait(id, wait_secs(rest.get(2))).map(|job| {
                println!(
                    "{}",
                    serde_json::to_string(&job).expect("status serializes")
                );
            })
        }
        "cancel" => {
            let id = rest.get(1).unwrap_or_else(|| usage());
            client.cancel(id).map(|response| {
                println!("{} {}", response.status, response.body);
            })
        }
        "queue" => client.queue().map(|queue| {
            println!(
                "{}",
                serde_json::to_string(&queue).expect("queue serializes")
            );
        }),
        "events" => {
            let id = rest.get(1).unwrap_or_else(|| usage());
            client.events(id).map(|events| {
                for event in events {
                    println!("{event}");
                }
            })
        }
        "metrics" => client.metrics().map(|text| {
            if rest.get(1).map(String::as_str) == Some("--raw") {
                print!("{text}");
            } else {
                print_metrics_table(&text);
            }
        }),
        "cache" => {
            if rest.get(1).map(String::as_str) == Some("--flush") {
                client.cache_flush().map(|cleared| {
                    println!("flushed {cleared} cached entries");
                })
            } else {
                client.cache_stats().map(|stats| {
                    let rows = [
                        ("entries", stats.entries),
                        ("bytes", stats.bytes),
                        ("segments", stats.segments),
                        ("hits", stats.hits),
                        ("misses", stats.misses),
                        ("inserts", stats.inserts),
                        ("evictions", stats.evictions),
                        ("corrupt_segments", stats.corrupt_segments),
                    ];
                    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
                    for (name, value) in rows {
                        println!("{name:width$}  {value}");
                    }
                })
            }
        }
        "health" => client.health().map(|health| {
            println!(
                "{}",
                serde_json::to_string(&health).expect("health serializes")
            );
            if !(health.ok && health.ready) {
                std::process::exit(1);
            }
        }),
        "trace" => {
            let id = rest.get(1).unwrap_or_else(|| usage());
            client.trace(id).map(|trace| {
                println!("trace for {}", trace.id);
                for root in &trace.spans {
                    print_span(root, 0);
                }
            })
        }
        "verify" => {
            let path = rest.get(1).unwrap_or_else(|| usage());
            let spec_json = read_spec(path);
            let timeout = wait_secs(rest.get(2));
            let spec: JobSpec = serde_json::from_str(&spec_json)
                .unwrap_or_else(|e| fail(format!("malformed spec {path}: {e}")));
            let response = client
                .submit(&spec_json)
                .unwrap_or_else(|e| fail(format!("submit failed: {e}")));
            if !(200..300).contains(&response.status) {
                fail(format!(
                    "submit rejected: {} {}",
                    response.status, response.body
                ));
            }
            let id = response
                .job()
                .unwrap_or_else(|e| fail(format!("bad submit response: {e}")))
                .id;
            let job = client
                .wait(&id, timeout)
                .unwrap_or_else(|e| fail(format!("wait failed: {e}")));
            let served = job.report.unwrap_or_else(|| {
                fail(format!("job {id} ended {:?} without a report", job.state))
            });
            let reference = ClaptonService::new()
                .run(spec)
                .unwrap_or_else(|e| fail(format!("in-process reference run failed: {e}")));
            let served_json = serde_json::to_string(&served).expect("report serializes");
            let reference_json = serde_json::to_string(&reference).expect("report serializes");
            if served_json != reference_json {
                eprintln!("served:    {served_json}");
                eprintln!("reference: {reference_json}");
                fail("served report differs from the in-process reference");
            }
            println!("verified: served report matches the in-process run for job {id}");
            Ok(())
        }
        _ => usage(),
    };
    if let Err(e) = outcome {
        fail(e);
    }
}
