//! The `clapton-server` binary: bind, recover, serve, drain on signal.
//!
//! ```text
//! clapton-server --root runs/server [--addr 127.0.0.1:8787] [--dispatchers 2]
//!                [--pool-workers 2] [--queue-depth 256] [--rate 0] [--burst 64]
//!                [--tenant-weight NAME=W]... [--drain-timeout 30]
//!                [--lease-ttl 30] [--request-timeout 10] [--port-file PATH]
//! ```
//!
//! SIGINT/SIGTERM begin a graceful drain: admissions stop (503), in-flight
//! jobs get `--drain-timeout` seconds to finish, stragglers are suspended
//! at their next round checkpoint, and the process exits 0. A SIGKILL'd
//! server loses nothing either — restart on the same `--root` and the
//! durable queue records and round checkpoints carry every accepted job
//! forward bit-identically.

use clapton_server::{AdmissionConfig, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the shutdown watcher thread.
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNAL_FLAG.store(true, Ordering::SeqCst);
}

/// `signal(2)` via a hand-rolled declaration — the vendor set has no libc
/// crate. glibc's `signal` installs the handler with `SA_RESTART`, so the
/// blocking accept loop is not interrupted; a watcher thread polls the
/// flag and wakes the acceptor with a loopback connection instead.
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: clapton-server --root DIR [--addr HOST:PORT] [--dispatchers N] \
         [--pool-workers N] [--queue-depth N] [--rate PER_SEC] [--burst N] \
         [--tenant-weight NAME=W]... [--drain-timeout SECS] [--lease-ttl SECS] \
         [--request-timeout SECS] [--port-file PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> (ServerConfig, Option<std::path::PathBuf>) {
    let mut root = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut dispatchers = 2usize;
    let mut pool_workers = 2usize;
    let mut admission = AdmissionConfig::default();
    let mut drain_timeout = Duration::from_secs(30);
    let mut lease_ttl = clapton_runtime::DEFAULT_LEASE_TTL;
    let mut request_timeout = Duration::from_secs(10);
    let mut port_file = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--root" => root = Some(std::path::PathBuf::from(value("--root"))),
            "--addr" => addr = value("--addr"),
            "--dispatchers" => dispatchers = parse(&value("--dispatchers"), "--dispatchers"),
            "--pool-workers" => pool_workers = parse(&value("--pool-workers"), "--pool-workers"),
            "--queue-depth" => {
                admission.queue_depth = parse(&value("--queue-depth"), "--queue-depth")
            }
            "--rate" => admission.rate = parse(&value("--rate"), "--rate"),
            "--burst" => admission.burst = parse(&value("--burst"), "--burst"),
            "--tenant-weight" => {
                let spec = value("--tenant-weight");
                let Some((name, weight)) = spec.split_once('=') else {
                    eprintln!("--tenant-weight wants NAME=WEIGHT, got {spec:?}");
                    usage();
                };
                admission
                    .weights
                    .push((name.to_string(), parse(weight, "--tenant-weight")));
            }
            "--drain-timeout" => {
                drain_timeout =
                    Duration::from_secs(parse(&value("--drain-timeout"), "--drain-timeout"))
            }
            "--lease-ttl" => {
                lease_ttl = Duration::from_secs(parse(&value("--lease-ttl"), "--lease-ttl"))
            }
            // 0 disables the per-connection socket deadline.
            "--request-timeout" => {
                request_timeout =
                    Duration::from_secs(parse(&value("--request-timeout"), "--request-timeout"))
            }
            "--port-file" => port_file = Some(std::path::PathBuf::from(value("--port-file"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let Some(root) = root else {
        eprintln!("--root is required");
        usage();
    };
    (
        ServerConfig {
            addr,
            root,
            dispatchers,
            pool_workers,
            admission,
            drain_timeout,
            lease_ttl,
            request_timeout,
        },
        port_file,
    )
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {text:?}");
        usage()
    })
}

fn main() {
    let (config, port_file) = parse_args();
    clapton_runtime::failpoint::configure_from_env().unwrap_or_else(|e| {
        eprintln!("clapton-server: bad CLAPTON_FAILPOINTS: {e}");
        std::process::exit(2);
    });
    install_signal_handlers();
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("clapton-server: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();
    let handle = server.handle();
    if let Some(path) = port_file {
        // Written atomically (tmp + rename) so a watcher never reads a
        // half-written port number.
        let tmp = path.with_extension("tmp");
        if let Err(e) = std::fs::write(&tmp, addr.port().to_string())
            .and_then(|()| std::fs::rename(&tmp, &path))
        {
            eprintln!("clapton-server: cannot write port file: {e}");
            std::process::exit(1);
        }
    }
    println!("clapton-server listening on {addr}");
    let watcher_handle = handle.clone();
    std::thread::Builder::new()
        .name("clapton-signal-watch".to_string())
        .spawn(move || loop {
            if SIGNAL_FLAG.load(Ordering::SeqCst) {
                // The drain stops admissions immediately (healthz flips to
                // not-ready) but keeps the accept loop answering until
                // in-flight jobs finish or suspend; serve() below returns
                // when it completes.
                watcher_handle.drain();
                return;
            }
            std::thread::sleep(Duration::from_millis(25));
        })
        .expect("spawn signal watcher");
    if let Err(e) = server.serve() {
        eprintln!("clapton-server: accept loop failed: {e}");
        std::process::exit(1);
    }
    // Idempotent second drain: everything already settled, this just
    // recounts the registry for the exit summary.
    let summary = handle.drain();
    println!(
        "clapton-server drained: {} completed, {} suspended at checkpoints, {} left queued",
        summary.completed, summary.suspended, summary.requeued
    );
}
