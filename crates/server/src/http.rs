//! A minimal HTTP/1.1 implementation over [`std::net`].
//!
//! The offline vendor constraint rules out hyper/tokio, and the server's
//! needs are small: parse one request per connection (`Connection: close`
//! everywhere), write JSON responses with a `Content-Length`, and stream
//! job events with chunked transfer encoding. This module is exactly that —
//! a request parser with hard limits (header block ≤ 64 KiB, body ≤ 8 MiB)
//! and two response writers — shared by the server, the bundled client, and
//! the loopback tests.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum accepted size of the request-line + header block.
const MAX_HEAD: usize = 64 * 1024;
/// Maximum accepted request body (a large inline-snapshot `JobSpec` is well
/// under 1 MiB; anything bigger is not a job submission).
const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path without the query string (e.g. `/v1/jobs/job-000001`).
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The request body as UTF-8 text.
    pub fn body_text(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// A malformed or oversized request (maps to a 400 and a closed connection).
#[derive(Debug)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed HTTP request: {}", self.0)
    }
}

/// What reading a request from a connection produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed without sending anything (e.g. the shutdown
    /// self-wake connection) — not an error.
    Closed,
    /// The bytes on the wire were not a valid request.
    Malformed(ParseError),
}

/// Reads one request from `stream` (blocking).
///
/// # Errors
///
/// Propagates transport-level I/O failures; protocol problems come back as
/// [`ReadOutcome::Malformed`].
pub fn read_request(stream: &mut TcpStream) -> io::Result<ReadOutcome> {
    let mut head = Vec::new();
    let mut buf = [0u8; 4096];
    let (head_end, mut overflow) = loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            if head.is_empty() {
                return Ok(ReadOutcome::Closed);
            }
            return Ok(ReadOutcome::Malformed(ParseError(
                "connection closed mid-headers".to_string(),
            )));
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_head_end(&head) {
            let overflow = head.split_off(pos + 4);
            head.truncate(pos);
            break (pos, overflow);
        }
        if head.len() > MAX_HEAD {
            return Ok(ReadOutcome::Malformed(ParseError(format!(
                "header block exceeds {MAX_HEAD} bytes"
            ))));
        }
    };
    debug_assert_eq!(head.len(), head_end);
    let head = match std::str::from_utf8(&head) {
        Ok(text) => text,
        Err(_) => {
            return Ok(ReadOutcome::Malformed(ParseError(
                "headers are not UTF-8".to_string(),
            )))
        }
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => {
            return Ok(ReadOutcome::Malformed(ParseError(format!(
                "bad request line {request_line:?}"
            ))))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(ParseError(format!(
            "unsupported protocol {version:?}"
        ))));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Malformed(ParseError(format!(
                "bad header line {line:?}"
            ))));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
    let content_length = match content_length {
        Ok(len) => len.unwrap_or(0),
        Err(_) => {
            return Ok(ReadOutcome::Malformed(ParseError(
                "unparseable Content-Length".to_string(),
            )))
        }
    };
    if content_length > MAX_BODY {
        return Ok(ReadOutcome::Malformed(ParseError(format!(
            "body of {content_length} bytes exceeds {MAX_BODY}"
        ))));
    }
    // Bytes past the body would be a pipelined second request; every
    // response carries `Connection: close`, so there is none to honor.
    overflow.truncate(content_length);
    let mut body = overflow;
    while body.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(ReadOutcome::Malformed(ParseError(
                "connection closed mid-body".to_string(),
            )));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(ReadOutcome::Request(Request {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        body,
    }))
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response with `Content-Length` and
/// `Connection: close`, plus any `extra` headers (e.g. `Retry-After`).
pub fn write_json_response(
    stream: &mut TcpStream,
    status: u16,
    extra: &[(&str, String)],
    body: &str,
) -> io::Result<()> {
    write_response(stream, status, "application/json", extra, body)
}

/// Writes a complete response of an arbitrary `Content-Type` (the metrics
/// endpoint uses the Prometheus text exposition content type).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// An in-progress chunked `text/event-stream` response: each event is one
/// `data: <json>\n\n` frame in its own chunk, and [`EventStream::finish`]
/// writes the terminating zero chunk.
pub struct EventStream<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> EventStream<'a> {
    /// Writes the streaming response head.
    ///
    /// # Errors
    ///
    /// Transport I/O failures.
    pub fn begin(stream: &'a mut TcpStream) -> io::Result<EventStream<'a>> {
        stream.write_all(
            b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
              Transfer-Encoding: chunked\r\nCache-Control: no-store\r\n\
              Connection: close\r\n\r\n",
        )?;
        stream.flush()?;
        Ok(EventStream { stream })
    }

    /// Writes one SSE `data:` frame as a chunk.
    ///
    /// # Errors
    ///
    /// Transport I/O failures (typically: the client hung up).
    pub fn send(&mut self, json: &str) -> io::Result<()> {
        let frame = format!("data: {json}\n\n");
        write!(self.stream, "{:x}\r\n", frame.len())?;
        self.stream.write_all(frame.as_bytes())?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked stream cleanly.
    ///
    /// # Errors
    ///
    /// Transport I/O failures.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let outcome = read_request(&mut conn).unwrap();
        writer.join().unwrap();
        outcome
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/jobs?trace=1 HTTP/1.1\r\nHost: x\r\nX-Tenant: alice\r\n\
                    Content-Length: 11\r\n\r\nhello world";
        match roundtrip(raw) {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/v1/jobs");
                assert_eq!(req.header("x-tenant"), Some("alice"));
                assert_eq!(req.header("X-TENANT"), Some("alice"));
                assert_eq!(req.body_text().unwrap(), "hello world");
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_bodyless_get_and_eof_only_connection() {
        let raw = b"GET /v1/queue HTTP/1.1\r\n\r\n";
        match roundtrip(raw) {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/v1/queue");
                assert!(req.body.is_empty());
            }
            other => panic!("expected request, got {other:?}"),
        }
        assert!(matches!(roundtrip(b""), ReadOutcome::Closed));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            roundtrip(b"not http at all\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            roundtrip(b"GET / SMTP/1.0\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }
}
