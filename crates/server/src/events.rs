//! Per-job event retention for the streaming endpoint.
//!
//! The scheduler streams [`RunEvent`]s over an `mpsc` channel, which can be
//! consumed exactly once — useless for an HTTP endpoint where clients attach
//! late, detach, and re-attach. [`EventLog`] is the adapter: a forwarder
//! thread appends every event as it arrives, and any number of readers
//! replay the log from the start and then block for more, releasing when
//! the log closes (job reached a terminal state).

use clapton_runtime::RunEvent;
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct LogInner {
    events: Vec<RunEvent>,
    closed: bool,
}

/// An append-only, multi-reader log of one job's [`RunEvent`]s.
#[derive(Debug, Default)]
pub struct EventLog {
    inner: Mutex<LogInner>,
    grew: Condvar,
}

impl EventLog {
    /// An empty, open log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Appends one event and wakes blocked readers.
    pub fn push(&self, event: RunEvent) {
        let mut inner = self.inner.lock().expect("event log");
        inner.events.push(event);
        drop(inner);
        self.grew.notify_all();
    }

    /// Marks the log complete; blocked readers drain and release.
    pub fn close(&self) {
        self.inner.lock().expect("event log").closed = true;
        self.grew.notify_all();
    }

    /// Returns event number `index` (0-based), blocking while the log is
    /// still open but hasn't grown that far; `None` once the log is closed
    /// and fully replayed.
    pub fn next(&self, index: usize) -> Option<RunEvent> {
        let mut inner = self.inner.lock().expect("event log");
        loop {
            if index < inner.events.len() {
                return Some(inner.events[index].clone());
            }
            if inner.closed {
                return None;
            }
            inner = self.grew.wait(inner).expect("event log");
        }
    }

    /// Number of events retained so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log").events.len()
    }

    /// Whether the log holds no events yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_runtime::EventKind;
    use std::sync::Arc;

    fn event(round: usize) -> RunEvent {
        // Fixed timestamps so two calls with the same round compare equal.
        RunEvent {
            job: "j".to_string(),
            kind: EventKind::Round(round, 0.0),
            unix_ns: 1_700_000_000_000_000_000,
            mono_ns: round as u64,
        }
    }

    #[test]
    fn replays_from_the_start_and_releases_on_close() {
        let log = Arc::new(EventLog::new());
        log.push(event(0));
        log.push(event(1));
        // A late reader sees the full history.
        assert_eq!(log.next(0), Some(event(0)));
        assert_eq!(log.next(1), Some(event(1)));
        // A blocked reader wakes when the log grows, then when it closes.
        let reader = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let third = log.next(2);
                let fourth = log.next(3);
                (third, fourth)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        log.push(event(2));
        std::thread::sleep(std::time::Duration::from_millis(30));
        log.close();
        let (third, fourth) = reader.join().unwrap();
        assert_eq!(third, Some(event(2)));
        assert_eq!(fourth, None);
    }
}
