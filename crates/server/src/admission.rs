//! Multi-tenant admission control: bounded depth, per-tenant token-bucket
//! rate limiting, and weighted fair-share dequeue ordering.
//!
//! The worker pool is the scarce resource — dispatch is ~15µs against
//! ~tens of milliseconds per job — so saturation policy lives entirely at
//! this queue: a submission is either *admitted* (and durably recorded by
//! the caller before the client sees a 202) or *shed* with an explicit
//! retry signal, never silently delayed into an unbounded backlog.
//!
//! Ordering is start-time weighted fair queueing: each tenant holds a FIFO
//! of its admitted jobs and a virtual time that advances by `1/weight` per
//! dispatched job; dequeue always picks the backlogged tenant with the
//! smallest virtual time (ties broken by tenant name, so the order is
//! deterministic). Two equal-weight tenants that each dump 2N jobs see
//! their completions interleave instead of the second tenant starving
//! behind the first's burst; a weight-2 tenant receives two dispatches for
//! every one of a weight-1 tenant while both are backlogged.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Admission-control settings (see [`crate::ServerConfig`] for the wire-in).
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Maximum jobs queued (not yet dispatched) across all tenants.
    pub queue_depth: usize,
    /// Token-bucket refill rate per tenant, submissions/second
    /// (`0` disables rate limiting).
    pub rate: f64,
    /// Token-bucket capacity per tenant (burst size).
    pub burst: f64,
    /// Explicit per-tenant fair-share weights; unlisted tenants get 1.0.
    pub weights: Vec<(String, f64)>,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_depth: 256,
            rate: 0.0,
            burst: 64.0,
            weights: Vec::new(),
        }
    }
}

/// Why a submission was shed instead of admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum Shed {
    /// The tenant's token bucket is empty; retry after the given seconds.
    RateLimited {
        /// Whole seconds until the bucket refills one token.
        retry_after_secs: u64,
    },
    /// The bounded queue is at capacity.
    QueueFull {
        /// Current queue depth (== capacity).
        depth: usize,
    },
    /// The queue is closed (server draining); nothing is admitted anymore.
    Closed,
}

/// A classic token bucket over a monotonic clock.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn try_take(&mut self, now: Instant, rate: f64, burst: f64) -> Result<(), u64> {
        if rate <= 0.0 {
            return Ok(());
        }
        self.tokens = (self.tokens + now.duration_since(self.last).as_secs_f64() * rate).min(burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err(((1.0 - self.tokens) / rate).ceil().max(1.0) as u64)
        }
    }
}

/// Live per-tenant usage, as reported by [`AdmissionQueue::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantUsage {
    /// Tenant name (`X-Tenant` header value).
    pub tenant: String,
    /// Fair-share weight.
    pub weight: f64,
    /// Jobs admitted but not yet dispatched.
    pub queued: usize,
    /// Jobs dispatched and currently executing.
    pub running: usize,
    /// Jobs that reached a terminal state.
    pub completed: u64,
    /// The tenant's weighted-fair-queueing virtual time; its distance above
    /// [`QueueStats::vclock`] is the tenant's scheduling lag.
    pub vtime: f64,
}

/// A point-in-time snapshot of the whole queue.
#[derive(Debug, Clone)]
pub struct QueueStats {
    /// Jobs admitted but not yet dispatched, across tenants.
    pub depth: usize,
    /// The bound on `depth`.
    pub capacity: usize,
    /// Whether new submissions are currently admitted.
    pub accepting: bool,
    /// Virtual time of the most recent dispatch (the WFQ clock).
    pub vclock: f64,
    /// Per-tenant usage, sorted by tenant name.
    pub tenants: Vec<TenantUsage>,
}

#[derive(Debug)]
struct TenantState {
    queue: VecDeque<String>,
    vtime: f64,
    weight: f64,
    bucket: TokenBucket,
    running: usize,
    completed: u64,
}

#[derive(Debug)]
struct QueueInner {
    tenants: HashMap<String, TenantState>,
    depth: usize,
    /// Virtual time of the most recent dispatch — newly backlogged tenants
    /// start here instead of claiming credit for their idle past.
    clock: f64,
    closed: bool,
}

/// The bounded, fair, rate-limited admission queue in front of the worker
/// dispatchers. Thread-safe; dispatchers block on [`AdmissionQueue::pop`].
#[derive(Debug)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

impl AdmissionQueue {
    /// An empty queue with the given policy.
    pub fn new(config: AdmissionConfig) -> AdmissionQueue {
        AdmissionQueue {
            config,
            inner: Mutex::new(QueueInner {
                tenants: HashMap::new(),
                depth: 0,
                clock: 0.0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn weight_for(&self, tenant: &str) -> f64 {
        self.config
            .weights
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, w)| *w)
            .unwrap_or(1.0)
            .max(1e-6)
    }

    /// Admits `job` for `tenant`, calling `persist` (the durable record
    /// write) under the admission lock so the capacity bound stays exact;
    /// the job is enqueued only if `persist` succeeds.
    ///
    /// # Errors
    ///
    /// [`Shed`] (wrapped in `Ok(Err(..))` semantics collapsed to a flat
    /// `Err`) when admission is refused — the bucket is dry, the queue is
    /// full or closed — or the `persist` error passed through verbatim.
    pub fn admit(
        &self,
        tenant: &str,
        job: String,
        persist: impl FnOnce() -> std::io::Result<()>,
    ) -> Result<usize, AdmitError> {
        let weight = self.weight_for(tenant);
        let mut inner = self.inner.lock().expect("admission queue");
        if inner.closed {
            return Err(AdmitError::Shed(Shed::Closed));
        }
        if inner.depth >= self.config.queue_depth {
            return Err(AdmitError::Shed(Shed::QueueFull { depth: inner.depth }));
        }
        let clock = inner.clock;
        let state = inner
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                queue: VecDeque::new(),
                vtime: clock,
                weight,
                bucket: TokenBucket {
                    tokens: self.config.burst,
                    last: Instant::now(),
                },
                running: 0,
                completed: 0,
            });
        if let Err(retry_after_secs) =
            state
                .bucket
                .try_take(Instant::now(), self.config.rate, self.config.burst)
        {
            return Err(AdmitError::Shed(Shed::RateLimited { retry_after_secs }));
        }
        persist().map_err(AdmitError::Io)?;
        if state.queue.is_empty() {
            // A tenant re-entering the backlog starts at the current virtual
            // clock: idling must not bank credit to later burst past others.
            state.vtime = state.vtime.max(clock);
        }
        state.queue.push_back(job);
        inner.depth += 1;
        drop(inner);
        self.ready.notify_one();
        Ok(self.depth())
    }

    /// Re-enqueues a job during crash recovery: bypasses the rate limiter
    /// and the capacity bound (the job was already admitted and durably
    /// recorded in a previous server life).
    pub fn readmit(&self, tenant: &str, job: String) {
        let weight = self.weight_for(tenant);
        let mut inner = self.inner.lock().expect("admission queue");
        let clock = inner.clock;
        let state = inner
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                queue: VecDeque::new(),
                vtime: clock,
                weight,
                bucket: TokenBucket {
                    tokens: self.config.burst,
                    last: Instant::now(),
                },
                running: 0,
                completed: 0,
            });
        state.queue.push_back(job);
        inner.depth += 1;
        drop(inner);
        self.ready.notify_one();
    }

    /// Blocks until a job is available (returned with its tenant) or the
    /// queue is closed and empty (`None` — the dispatcher should exit).
    pub fn pop(&self) -> Option<(String, String)> {
        let mut inner = self.inner.lock().expect("admission queue");
        loop {
            if let Some((tenant, vtime, weight)) = inner
                .tenants
                .iter()
                .filter(|(_, s)| !s.queue.is_empty())
                .map(|(name, s)| (name.clone(), s.vtime, s.weight))
                .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            {
                inner.clock = vtime;
                let state = inner.tenants.get_mut(&tenant).expect("tenant exists");
                let job = state.queue.pop_front().expect("tenant backlogged");
                state.vtime = vtime + 1.0 / weight;
                state.running += 1;
                inner.depth -= 1;
                return Some((tenant, job));
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("admission queue");
        }
    }

    /// Removes a specific queued job (a cancellation before dispatch).
    /// Returns whether it was found.
    pub fn remove(&self, tenant: &str, job: &str) -> bool {
        let mut inner = self.inner.lock().expect("admission queue");
        let Some(state) = inner.tenants.get_mut(tenant) else {
            return false;
        };
        let before = state.queue.len();
        state.queue.retain(|j| j != job);
        let removed = before - state.queue.len();
        inner.depth -= removed;
        removed > 0
    }

    /// Records that a dispatched job of `tenant` reached a terminal state.
    pub fn note_finished(&self, tenant: &str) {
        let mut inner = self.inner.lock().expect("admission queue");
        if let Some(state) = inner.tenants.get_mut(tenant) {
            state.running = state.running.saturating_sub(1);
            state.completed += 1;
        }
    }

    /// Closes the queue: nothing is admitted anymore, and dispatchers drain
    /// the backlog… no — dispatchers stop at the *next* pop, leaving the
    /// backlog durably recorded for the restarted server to resume.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("admission queue");
        inner.closed = true;
        // Draining dispatchers must not pick up more queued work: the
        // backlog is persisted and belongs to the next server life.
        for state in inner.tenants.values_mut() {
            state.queue.clear();
        }
        inner.depth = 0;
        drop(inner);
        self.ready.notify_all();
    }

    /// Jobs admitted but not yet dispatched.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("admission queue").depth
    }

    /// A point-in-time snapshot for the introspection endpoint.
    pub fn stats(&self) -> QueueStats {
        let inner = self.inner.lock().expect("admission queue");
        let mut tenants: Vec<TenantUsage> = inner
            .tenants
            .iter()
            .map(|(name, s)| TenantUsage {
                tenant: name.clone(),
                weight: s.weight,
                queued: s.queue.len(),
                running: s.running,
                completed: s.completed,
                vtime: s.vtime,
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        QueueStats {
            depth: inner.depth,
            capacity: self.config.queue_depth,
            accepting: !inner.closed,
            vclock: inner.clock,
            tenants,
        }
    }
}

/// Why [`AdmissionQueue::admit`] failed.
#[derive(Debug)]
pub enum AdmitError {
    /// Admission policy refused the job.
    Shed(Shed),
    /// The durable record write failed; the job was *not* admitted.
    Io(std::io::Error),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_persist() -> std::io::Result<()> {
        Ok(())
    }

    #[test]
    fn equal_weights_interleave_dequeues() {
        let queue = AdmissionQueue::new(AdmissionConfig::default());
        for i in 0..4 {
            queue.admit("alice", format!("a{i}"), no_persist).unwrap();
        }
        for i in 0..4 {
            queue.admit("bob", format!("b{i}"), no_persist).unwrap();
        }
        let order: Vec<String> = (0..8).map(|_| queue.pop().unwrap().1).collect();
        assert_eq!(
            order,
            vec!["a0", "b0", "a1", "b1", "a2", "b2", "a3", "b3"],
            "equal-weight tenants alternate instead of FIFO-starving"
        );
    }

    #[test]
    fn weights_bias_the_share() {
        let queue = AdmissionQueue::new(AdmissionConfig {
            weights: vec![("heavy".to_string(), 2.0)],
            ..AdmissionConfig::default()
        });
        for i in 0..6 {
            queue.admit("heavy", format!("h{i}"), no_persist).unwrap();
            queue.admit("light", format!("l{i}"), no_persist).unwrap();
        }
        let first_six: Vec<String> = (0..6).map(|_| queue.pop().unwrap().0).collect();
        let heavy = first_six.iter().filter(|t| *t == "heavy").count();
        assert_eq!(heavy, 4, "weight 2 gets ~2/3 of dispatches: {first_six:?}");
    }

    #[test]
    fn depth_bound_sheds_with_current_depth() {
        let queue = AdmissionQueue::new(AdmissionConfig {
            queue_depth: 2,
            ..AdmissionConfig::default()
        });
        queue.admit("t", "j1".to_string(), no_persist).unwrap();
        queue.admit("t", "j2".to_string(), no_persist).unwrap();
        match queue.admit("t", "j3".to_string(), no_persist) {
            Err(AdmitError::Shed(Shed::QueueFull { depth: 2 })) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Dispatching frees a slot.
        queue.pop().unwrap();
        queue.admit("t", "j3".to_string(), no_persist).unwrap();
    }

    #[test]
    fn token_bucket_sheds_and_names_a_retry_horizon() {
        let queue = AdmissionQueue::new(AdmissionConfig {
            rate: 0.5,
            burst: 2.0,
            ..AdmissionConfig::default()
        });
        queue.admit("t", "j1".to_string(), no_persist).unwrap();
        queue.admit("t", "j2".to_string(), no_persist).unwrap();
        match queue.admit("t", "j3".to_string(), no_persist) {
            Err(AdmitError::Shed(Shed::RateLimited { retry_after_secs })) => {
                assert!(
                    (1..=2).contains(&retry_after_secs),
                    "0.5 tokens/s needs ~2s for a fresh token, got {retry_after_secs}"
                );
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
    }

    #[test]
    fn failed_persist_admits_nothing() {
        let queue = AdmissionQueue::new(AdmissionConfig::default());
        let result = queue.admit("t", "j1".to_string(), || {
            Err(std::io::Error::other("disk full"))
        });
        assert!(matches!(result, Err(AdmitError::Io(_))));
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn idle_tenants_do_not_bank_credit() {
        let queue = AdmissionQueue::new(AdmissionConfig::default());
        // alice burns through 4 dispatches while bob idles.
        for i in 0..4 {
            queue.admit("alice", format!("a{i}"), no_persist).unwrap();
        }
        for _ in 0..4 {
            queue.pop().unwrap();
        }
        // bob arriving now must not get 4 consecutive dispatches of credit.
        for i in 0..3 {
            queue.admit("alice", format!("x{i}"), no_persist).unwrap();
            queue.admit("bob", format!("b{i}"), no_persist).unwrap();
        }
        let tenants: Vec<String> = (0..6).map(|_| queue.pop().unwrap().0).collect();
        let lead: Vec<&String> = tenants.iter().take(2).collect();
        assert!(
            lead.contains(&&"alice".to_string()) && lead.contains(&&"bob".to_string()),
            "arrivals interleave immediately: {tenants:?}"
        );
    }

    #[test]
    fn close_wakes_poppers_and_preserves_nothing_in_memory() {
        let queue = std::sync::Arc::new(AdmissionQueue::new(AdmissionConfig::default()));
        queue.admit("t", "j1".to_string(), no_persist).unwrap();
        let popper = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || {
                let first = queue.pop();
                let second = queue.pop();
                (first, second)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        queue.close();
        let (first, second) = popper.join().unwrap();
        assert_eq!(first, Some(("t".to_string(), "j1".to_string())));
        assert_eq!(second, None, "closed + empty queue releases the popper");
        assert!(matches!(
            queue.admit("t", "j2".to_string(), no_persist),
            Err(AdmitError::Shed(Shed::Closed))
        ));
    }
}
