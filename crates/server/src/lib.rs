//! `clapton-server`: the Clapton stack as a networked, multi-tenant job
//! service.
//!
//! [PR 5](../clapton_service/index.html) made every entry point compile
//! down to one serializable [`JobSpec`](clapton_service::JobSpec); this
//! crate puts that front door on a socket. The server is HTTP/1.1 + JSON
//! hand-rolled over [`std::net`] — the offline vendor set has no hyper or
//! tokio, and the protocol is small enough that a few hundred lines of
//! blocking-socket code cover it honestly.
//!
//! ## Endpoints
//!
//! | Method & path              | Purpose                                        |
//! |----------------------------|------------------------------------------------|
//! | `POST /v1/jobs`            | Submit a `JobSpec`; `202` + job id             |
//! | `GET /v1/jobs/{id}`        | Status, with the `Report` once done            |
//! | `GET /v1/jobs/{id}/events` | `RunEvent` stream (SSE frames, chunked)        |
//! | `DELETE /v1/jobs/{id}`     | Cooperative cancellation at a round boundary   |
//! | `GET /v1/queue`            | Queue depth, per-tenant usage, pool saturation |
//!
//! ## Guarantees
//!
//! * **Admission control** — per-tenant token buckets (`429` +
//!   `Retry-After`) in front of a bounded queue (`429` when full), with
//!   weighted fair-share dequeue ordering so one tenant's burst cannot
//!   starve another ([`AdmissionQueue`]).
//! * **Durability** — every accepted job is recorded under
//!   `<root>/queue/` *before* the client sees `202`. A SIGKILL'd server
//!   restarted on the same root re-admits queued jobs and resumes
//!   in-flight jobs from their round checkpoints, bit-identically — the
//!   server adds no state beyond what the
//!   [`ClaptonService`](clapton_service::ClaptonService) artifact contract
//!   already persists.
//! * **Graceful drain** — SIGINT/SIGTERM stops admissions, lets in-flight
//!   jobs finish within `--drain-timeout`, then suspends stragglers at
//!   their next round boundary and exits 0 ([`ServerHandle::drain`]).
//!
//! See `docs/PROTOCOL.md` for the wire-level details and the `clapton-server`
//! / `clapton-client` binaries for the command-line surface.

#![warn(missing_docs)]

mod admission;
pub mod client;
mod events;
pub mod http;
mod server;

pub use admission::{AdmissionConfig, AdmissionQueue, AdmitError, QueueStats, Shed, TenantUsage};
pub use events::EventLog;
pub use server::{
    CacheFlushBody, DrainSummary, ErrorBody, HealthBody, JobQueueRow, JobStatusBody, QueueBody,
    QueueRecord, Server, ServerConfig, ServerHandle, TenantBody,
};
