//! Property test: span trees stay well-formed under nested pool fan-out.
//!
//! A traced "job" fans out tasks on the worker pool, and each task opens a
//! nested scope of its own — the exact shape of a scheduled job running
//! pooled population batches. Whatever the interleaving of owners and
//! stealing workers, the collected trace must be a single tree with correct
//! parent linkage and temporal containment.

use clapton_runtime::WorkerPool;
use clapton_telemetry::{push_context, span, span_tree, SpanRecord, Trace};
use proptest::prelude::*;

/// Asserts parent linkage, id uniqueness, and temporal containment, and
/// returns the records grouped as a tree.
fn assert_well_formed(records: &[SpanRecord], trace_id: u64) {
    let mut ids = std::collections::HashSet::new();
    for rec in records {
        assert!(rec.span != 0, "span ids are never 0");
        assert!(ids.insert(rec.span), "span id {} duplicated", rec.span);
        assert_eq!(rec.trace, trace_id, "every record belongs to the trace");
        assert!(rec.start_ns <= rec.end_ns, "spans close after they open");
    }
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        records.iter().map(|r| (r.span, r)).collect();
    for rec in records {
        if rec.parent == 0 {
            continue;
        }
        let parent = by_id
            .get(&rec.parent)
            .unwrap_or_else(|| panic!("{}'s parent {} missing", rec.name, rec.parent));
        assert!(
            parent.start_ns <= rec.start_ns && rec.end_ns <= parent.end_ns,
            "child {:?} [{}, {}] escapes parent {:?} [{}, {}]",
            rec.name,
            rec.start_ns,
            rec.end_ns,
            parent.name,
            parent.start_ns,
            parent.end_ns
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn span_trees_are_well_formed_under_nested_fanout(
        workers in 0usize..4,
        jobs in 1usize..5,
        chunks in 1usize..6,
    ) {
        let pool = WorkerPool::with_workers(workers);
        let trace = Trace::begin();
        {
            let _ctx = push_context(trace.context());
            let _job = span("job");
            pool.scope(|s| {
                for _ in 0..jobs {
                    let pool = &pool;
                    s.spawn(move || {
                        let _batch = span("batch");
                        pool.scope(|inner| {
                            for _ in 0..chunks {
                                inner.spawn(|| {
                                    let _chunk = span("chunk");
                                    std::hint::black_box(7u64.pow(3));
                                });
                            }
                        });
                    });
                }
            });
        }
        let records = trace.finish();
        prop_assert_eq!(records.len(), 1 + jobs * (1 + chunks));
        assert_well_formed(&records, trace.id());

        // Structure: one root ("job") -> `jobs` batches -> `chunks` chunks.
        let forest = span_tree(&records);
        prop_assert_eq!(forest.len(), 1, "a single root");
        let root = &forest[0];
        prop_assert_eq!(root.name.as_str(), "job");
        prop_assert_eq!(root.children.len(), jobs);
        for batch in &root.children {
            prop_assert_eq!(batch.name.as_str(), "batch");
            prop_assert_eq!(batch.children.len(), chunks);
            for chunk in &batch.children {
                prop_assert_eq!(chunk.name.as_str(), "chunk");
                prop_assert!(chunk.children.is_empty());
            }
        }
    }
}
