//! Lease-lifecycle integration tests for the shared work queue: claim
//! contention across real threads, keeper-driven heartbeats outliving the
//! TTL, stale takeover, release-then-reclaim, and the listing-order
//! determinism the shard merge depends on.

use clapton_runtime::{
    acquire, lease_state, ClaimOutcome, LeaseKeeper, RunRegistry, WorkQueue, CLAIM_ARTIFACT,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clapton-workqueue-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn n_racing_claimants_produce_exactly_one_winner() {
    const CLAIMANTS: usize = 16;
    let dir = scratch("race");
    let ttl = Duration::from_secs(60);
    let barrier = Arc::new(Barrier::new(CLAIMANTS));
    let wins = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLAIMANTS)
        .map(|i| {
            let dir = dir.clone();
            let barrier = Arc::clone(&barrier);
            let wins = Arc::clone(&wins);
            std::thread::spawn(move || {
                barrier.wait();
                match acquire(&dir, &format!("claimant-{i}"), ttl).unwrap() {
                    ClaimOutcome::Acquired(lease) => {
                        wins.fetch_add(1, Ordering::SeqCst);
                        Some(lease)
                    }
                    ClaimOutcome::Held { .. } => None,
                }
            })
        })
        .collect();
    let mut winner = None;
    for handle in handles {
        if let Some(lease) = handle.join().unwrap() {
            winner = Some(lease);
        }
    }
    assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one claimant wins");
    let lease = winner.expect("the winner's lease survives the race");
    let state = lease_state(&dir, ttl).unwrap().unwrap();
    assert_eq!(state.owner, lease.owner(), "claim records the winner");
    lease.release().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn keeper_heartbeats_hold_the_lease_past_many_ttls() {
    let dir = scratch("keeper");
    let ttl = Duration::from_millis(120);
    let ClaimOutcome::Acquired(lease) = acquire(&dir, "long-runner", ttl).unwrap() else {
        panic!("claim");
    };
    let keeper = LeaseKeeper::spawn(lease, ttl / 4);
    // Without heartbeats the claim would be stale after one TTL; the keeper
    // must carry it through several.
    for _ in 0..5 {
        std::thread::sleep(ttl);
        match acquire(&dir, "vulture", ttl).unwrap() {
            ClaimOutcome::Held { owner, .. } => assert_eq!(owner, "long-runner"),
            ClaimOutcome::Acquired(_) => panic!("kept lease must never expire"),
        }
    }
    assert!(!keeper.lost(), "nobody stole the kept lease");
    keeper.release().unwrap();
    assert!(
        lease_state(&dir, ttl).unwrap().is_none(),
        "release removes the claim"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_takeover_flips_keeper_to_lost() {
    let dir = scratch("takeover");
    let ttl = Duration::from_millis(80);
    let ClaimOutcome::Acquired(dead) = acquire(&dir, "doomed", ttl).unwrap() else {
        panic!("claim");
    };
    // A keeper beating far slower than the TTL simulates a wedged worker:
    // its claim goes stale between heartbeats.
    let keeper = LeaseKeeper::spawn(dead, Duration::from_secs(5));
    std::thread::sleep(ttl * 3);
    let ClaimOutcome::Acquired(thief) = acquire(&dir, "thief", ttl).unwrap() else {
        panic!("stale lease must be stealable");
    };
    assert_eq!(lease_state(&dir, ttl).unwrap().unwrap().owner, "thief");
    thief.release().unwrap();
    // The doomed keeper's next heartbeat (forced by drop) must observe the
    // theft rather than resurrect its claim over the released slot.
    drop(keeper);
    assert!(
        lease_state(&dir, ttl).unwrap().is_none(),
        "dead owner must not resurrect a stolen-then-released claim"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn released_lease_is_immediately_reclaimable() {
    let dir = scratch("reclaim");
    let ttl = Duration::from_secs(60);
    for round in 0..4 {
        let owner = format!("worker-{}", round % 2);
        let ClaimOutcome::Acquired(lease) = acquire(&dir, &owner, ttl).unwrap() else {
            panic!("round {round}: released lease must be reclaimable at once");
        };
        lease.release().unwrap();
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn registry_listing_is_sorted_regardless_of_creation_order() {
    let root = scratch("order");
    let registry = RunRegistry::open(&root).unwrap();
    // Created deliberately out of lexicographic order.
    for name in ["zeta-job", "alpha-job", "mid-job", "beta-job"] {
        registry.run(name).unwrap();
    }
    let expected = vec![
        "alpha-job".to_string(),
        "beta-job".to_string(),
        "mid-job".to_string(),
        "zeta-job".to_string(),
    ];
    assert_eq!(registry.run_names().unwrap(), expected);
    let queue: WorkQueue = registry.work_queue("w1", Duration::from_secs(60));
    assert_eq!(
        queue.enumerate().unwrap(),
        expected,
        "the work queue scan order matches the registry listing"
    );
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn claim_artifact_lives_inside_the_job_directory() {
    let root = scratch("artifact");
    let registry = RunRegistry::open(&root).unwrap();
    let queue = registry.work_queue("w1", Duration::from_secs(60));
    let ClaimOutcome::Acquired(lease) = queue.claim("job-x").unwrap() else {
        panic!("claim");
    };
    assert!(root.join("job-x").join(CLAIM_ARTIFACT).is_file());
    lease.release().unwrap();
    assert!(!root.join("job-x").join(CLAIM_ARTIFACT).exists());
    fs::remove_dir_all(&root).unwrap();
}
