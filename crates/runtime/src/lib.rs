//! The Clapton runtime: a persistent worker-pool scheduler with
//! checkpoint/resume.
//!
//! The GA engine's wall-clock is dominated by loss evaluation, and a
//! production deployment runs *many* searches at once (the paper's Figure 5
//! suite alone is 12 instances). This crate provides the shared execution
//! substrate those workloads run on:
//!
//! * [`WorkerPool`] — a persistent work-stealing thread pool. Scoped tasks
//!   may borrow from the caller's stack; scope owners drain their own queue
//!   while waiting, so nested fan-out (suite → job → GA round → population
//!   batch) shares one set of threads without deadlock or oversubscription.
//! * [`PooledEvaluator`] — population-batch evaluation on the shared pool,
//!   replacing per-batch thread spawns (`clapton_eval::ParallelEvaluator`).
//! * [`JobScheduler`] — runs many jobs concurrently with fair round-robin
//!   interleaving of their batches, streaming [`RunEvent`]s while they run.
//! * [`RunDirectory`] / [`RunRegistry`] — atomic JSON artifact storage for
//!   checkpoint/resume: a run killed at any instant resumes from complete
//!   round snapshots, bit-identical to an uninterrupted run.
//! * [`WorkQueue`] / [`Lease`] / [`LeaseKeeper`] — lease files over the
//!   registry turning it into a shared, crash-tolerant work queue: many
//!   worker processes (or hosts over a shared filesystem) claim per-job
//!   artifact directories exclusively, heartbeat while working, and take
//!   over stale leases from dead peers by resuming their checkpoints.
//!
//! The crate is deliberately independent of the GA/core layers: it moves
//! closures and serializable documents, so `clapton-ga` can expose
//! checkpointable engine state and `clapton-bench`'s `suite-runner` can
//! orchestrate whole benchmark suites on top.

mod cancel;
mod checkpoint;
mod evaluator;
pub mod failpoint;
mod pool;
mod scheduler;
mod workqueue;

pub use cancel::{CancelToken, Interrupt};
pub use checkpoint::{
    artifact_slug, open_envelope_record, seal_envelope, Artifact, RunDirectory, RunInfo,
    RunManifest, RunRegistry,
};
pub use evaluator::PooledEvaluator;
pub use pool::{PoolScope, WorkerPool};
pub use scheduler::{EventKind, JobContext, JobScheduler, RunEvent, ScheduledJob};
pub use workqueue::{
    acquire, default_worker_id, lease_state, ClaimOutcome, Lease, LeaseClaim, LeaseKeeper,
    LeaseState, WorkQueue, CLAIM_ARTIFACT, DEFAULT_LEASE_TTL,
};
