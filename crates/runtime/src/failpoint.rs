//! Deterministic fault injection for the persistence paths.
//!
//! A *failpoint* is a named site in production code (artifact writes, lease
//! claims, heartbeats, queue-record persists) that can be armed to misbehave
//! on specific hits: return an injected `io::Error`, truncate the bytes
//! about to be written (a torn file), stall for a configured delay, or
//! abort the process outright. Schedules are exact and deterministic — a
//! rule names the 1-based hit indices it fires on — so a chaos run with the
//! same schedule reproduces the same faults at the same points every time,
//! and the seeded schedule *generator* (see `clapton-bench`'s chaos module)
//! turns one integer into a whole reproducible failure scenario.
//!
//! Cost when disarmed: a single relaxed atomic load per site (the same
//! pattern as `clapton_telemetry::set_enabled`), so the sites stay compiled
//! into release builds permanently. The `failpoint_overhead` BENCH row holds
//! this below 1% against the `ln_exact` evaluator kernel.
//!
//! Configuration is a spec string, programmatic ([`configure`]) or via the
//! `CLAPTON_FAILPOINTS` environment variable ([`configure_from_env`],
//! called by the `suite-runner` and `clapton-server` binaries):
//!
//! ```text
//! registry.write.flush=torn@3;workqueue.heartbeat=delay:500@2,4;server.queue.persist=err@1
//! ```
//!
//! `point=action@hits` clauses are `;`-separated; `hits` is a `,`-separated
//! list of 1-based hit indices, or `*` for every hit. Actions: `err`,
//! `torn` / `torn:<keep-bytes>`, `delay:<ms>`, `abort`.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailAction {
    /// Return an injected `io::Error` (kind `Other`, message names the
    /// point) from the site.
    Err,
    /// Truncate the bytes about to be written: keep only the first `n`
    /// bytes (`None` → keep half). Models a torn write — a crash after the
    /// rename committed but before the data blocks reached the platter —
    /// and is only meaningful at write sites; elsewhere it is a no-op.
    Torn(Option<usize>),
    /// Sleep for the given duration before proceeding (stalled worker,
    /// slow filesystem). The site then succeeds normally.
    Delay(Duration),
    /// `std::process::abort()` — the SIGKILL-grade crash the checkpoint
    /// and lease protocols must survive.
    Abort,
}

/// When a rule fires: on specific 1-based hit indices, or on every hit.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Hits {
    Every,
    At(Vec<u64>),
}

/// One armed rule on one named point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailRule {
    /// The failpoint name the rule arms.
    pub point: String,
    /// What happens when it fires.
    pub action: FailAction,
    hits: Hits,
}

impl FailRule {
    /// A rule firing `action` at the given 1-based hit indices of `point`.
    pub fn at(point: impl Into<String>, action: FailAction, hits: &[u64]) -> FailRule {
        FailRule {
            point: point.into(),
            action,
            hits: Hits::At(hits.to_vec()),
        }
    }

    /// A rule firing `action` on every hit of `point`.
    pub fn every(point: impl Into<String>, action: FailAction) -> FailRule {
        FailRule {
            point: point.into(),
            action,
            hits: Hits::Every,
        }
    }

    /// Renders the rule in [`configure`] spec syntax.
    pub fn to_spec(&self) -> String {
        let action = match &self.action {
            FailAction::Err => "err".to_string(),
            FailAction::Torn(None) => "torn".to_string(),
            FailAction::Torn(Some(keep)) => format!("torn:{keep}"),
            FailAction::Delay(d) => format!("delay:{}", d.as_millis()),
            FailAction::Abort => "abort".to_string(),
        };
        let hits = match &self.hits {
            Hits::Every => "*".to_string(),
            Hits::At(at) => at.iter().map(u64::to_string).collect::<Vec<_>>().join(","),
        };
        format!("{}={action}@{hits}", self.point)
    }
}

#[derive(Debug, Default)]
struct PointState {
    rules: Vec<FailRule>,
    hits: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn table() -> &'static Mutex<HashMap<String, PointState>> {
    static TABLE: std::sync::OnceLock<Mutex<HashMap<String, PointState>>> =
        std::sync::OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Whether any failpoint is currently armed. The disarmed fast path every
/// site takes is exactly this one relaxed load.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms the given rules (replacing any previous schedule) and resets every
/// hit counter.
pub fn install(rules: Vec<FailRule>) {
    let mut table = table().lock().unwrap_or_else(|e| e.into_inner());
    table.clear();
    for rule in rules {
        table
            .entry(rule.point.clone())
            .or_default()
            .rules
            .push(rule);
    }
    let any = !table.is_empty();
    drop(table);
    ARMED.store(any, Ordering::Relaxed);
}

/// Disarms every failpoint and clears all hit counters.
pub fn clear() {
    install(Vec::new());
}

/// Parses a `point=action@hits;...` spec string (see the module docs) and
/// arms it. A malformed spec disarms everything rather than arming a
/// prefix — a chaos run with half a schedule would look like a pass.
///
/// # Errors
///
/// A human-readable description of the first malformed clause.
pub fn configure(spec: &str) -> Result<(), String> {
    parse_spec(spec).map(install).inspect_err(|_| clear())
}

fn parse_spec(spec: &str) -> Result<Vec<FailRule>, String> {
    let mut rules = Vec::new();
    for clause in spec.split(';').filter(|c| !c.trim().is_empty()) {
        let clause = clause.trim();
        let (point, rest) = clause
            .split_once('=')
            .ok_or_else(|| format!("failpoint clause {clause:?} has no '='"))?;
        let (action_text, hits_text) = match rest.split_once('@') {
            Some((a, h)) => (a, h),
            None => (rest, "*"),
        };
        let action = parse_action(action_text).ok_or_else(|| {
            format!("failpoint clause {clause:?}: unknown action {action_text:?}")
        })?;
        let hits = if hits_text == "*" {
            Hits::Every
        } else {
            let mut at = Vec::new();
            for part in hits_text.split(',') {
                let n: u64 = part
                    .trim()
                    .parse()
                    .map_err(|_| format!("failpoint clause {clause:?}: bad hit index {part:?}"))?;
                if n == 0 {
                    return Err(format!(
                        "failpoint clause {clause:?}: hit indices are 1-based"
                    ));
                }
                at.push(n);
            }
            Hits::At(at)
        };
        rules.push(FailRule {
            point: point.trim().to_string(),
            action,
            hits,
        });
    }
    Ok(rules)
}

fn parse_action(text: &str) -> Option<FailAction> {
    let text = text.trim();
    if let Some(rest) = text.strip_prefix("delay:") {
        return rest
            .parse()
            .ok()
            .map(|ms| FailAction::Delay(Duration::from_millis(ms)));
    }
    if let Some(rest) = text.strip_prefix("torn:") {
        return rest.parse().ok().map(|keep| FailAction::Torn(Some(keep)));
    }
    match text {
        "err" => Some(FailAction::Err),
        "torn" => Some(FailAction::Torn(None)),
        "abort" => Some(FailAction::Abort),
        _ => None,
    }
}

/// The environment variable [`configure_from_env`] reads.
pub const FAILPOINTS_ENV: &str = "CLAPTON_FAILPOINTS";

/// Arms the schedule in `CLAPTON_FAILPOINTS`, if set. Binaries call this
/// once at startup; a malformed spec is reported rather than ignored.
///
/// # Errors
///
/// The parse error for a malformed spec.
pub fn configure_from_env() -> Result<(), String> {
    match std::env::var(FAILPOINTS_ENV) {
        Ok(spec) if !spec.trim().is_empty() => configure(&spec),
        _ => Ok(()),
    }
}

/// Records a hit on `point` and returns the action to perform, if a rule
/// fires on this hit. `Delay` is served (slept) internally and `Abort`
/// aborts; only `Err` and `Torn` come back to the caller.
fn fire(point: &str) -> Option<FailAction> {
    let action = {
        let mut table = table().lock().unwrap_or_else(|e| e.into_inner());
        let state = table.get_mut(point)?;
        state.hits += 1;
        let hit = state.hits;
        state
            .rules
            .iter()
            .find(|rule| match &rule.hits {
                Hits::Every => true,
                Hits::At(at) => at.contains(&hit),
            })
            .map(|rule| rule.action.clone())?
    };
    count_fired(point, &action);
    match action {
        FailAction::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        FailAction::Abort => std::process::abort(),
        other => Some(other),
    }
}

fn count_fired(point: &str, action: &FailAction) {
    let label = match action {
        FailAction::Err => "err",
        FailAction::Torn(_) => "torn",
        FailAction::Delay(_) => "delay",
        FailAction::Abort => "abort",
    };
    clapton_telemetry::registry()
        .counter_with(
            "clapton_failpoints_fired_total",
            "Armed failpoints that fired, by point and action.",
            &[("point", point), ("action", label)],
        )
        .inc();
}

/// The injected error every `err` action surfaces (kind `Other`, so it is
/// distinguishable from real `NotFound`/`AlreadyExists` protocol signals).
fn injected(point: &str) -> io::Error {
    io::Error::other(format!("injected fault at failpoint {point}"))
}

/// Serializes tests that arm the process-wide failpoint table. Tests in the
/// same binary run on parallel threads; any test calling [`install`] /
/// [`configure`] must hold this guard for its duration, or two tests'
/// schedules would interleave.
pub fn tests_exclusive() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// A plain (non-write) failpoint site: returns the injected error when an
/// `err` rule fires on this hit, sleeps through `delay`, aborts on `abort`.
///
/// # Errors
///
/// The injected error, when armed to fire here.
#[inline]
pub fn check(point: &str) -> io::Result<()> {
    if !armed() {
        return Ok(());
    }
    match fire(point) {
        Some(FailAction::Err) => Err(injected(point)),
        _ => Ok(()),
    }
}

/// A write-site failpoint: like [`check`], but a `torn` rule truncates
/// `bytes` in place (keeping the configured prefix, default half) and lets
/// the write proceed — producing exactly the torn-but-renamed artifact the
/// integrity envelope exists to catch.
///
/// # Errors
///
/// The injected error, when armed to fire here with `err`.
#[inline]
pub fn check_write(point: &str, bytes: &mut Vec<u8>) -> io::Result<()> {
    if !armed() {
        return Ok(());
    }
    match fire(point) {
        Some(FailAction::Err) => Err(injected(point)),
        Some(FailAction::Torn(keep)) => {
            let keep = keep.unwrap_or(bytes.len() / 2).min(bytes.len());
            bytes.truncate(keep);
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use tests_exclusive as exclusive;

    #[test]
    fn disarmed_sites_are_transparent() {
        let _gate = exclusive();
        clear();
        assert!(!armed());
        assert!(check("nowhere").is_ok());
        let mut bytes = b"intact".to_vec();
        assert!(check_write("nowhere", &mut bytes).is_ok());
        assert_eq!(bytes, b"intact");
    }

    #[test]
    fn err_fires_on_exact_hits_only() {
        let _gate = exclusive();
        install(vec![FailRule::at("p", FailAction::Err, &[2, 4])]);
        assert!(check("p").is_ok(), "hit 1");
        assert!(check("p").is_err(), "hit 2");
        assert!(check("p").is_ok(), "hit 3");
        assert!(check("p").is_err(), "hit 4");
        assert!(check("p").is_ok(), "hit 5");
        assert!(check("unrelated").is_ok());
        clear();
    }

    #[test]
    fn torn_truncates_the_write() {
        let _gate = exclusive();
        install(vec![FailRule::at("w", FailAction::Torn(Some(3)), &[1])]);
        let mut bytes = b"0123456789".to_vec();
        assert!(check_write("w", &mut bytes).is_ok());
        assert_eq!(bytes, b"012");
        let mut bytes = b"0123456789".to_vec();
        assert!(check_write("w", &mut bytes).is_ok(), "hit 2 does not fire");
        assert_eq!(bytes.len(), 10);
        clear();
    }

    #[test]
    fn spec_round_trips_through_configure() {
        let _gate = exclusive();
        let spec = "a.b=err@1,3;c=torn:7@*;d=delay:50@2";
        configure(spec).unwrap();
        assert!(armed());
        // a.b: hits 1 and 3 only.
        assert!(check("a.b").is_err());
        assert!(check("a.b").is_ok());
        assert!(check("a.b").is_err());
        // c: every hit truncates to 7 bytes.
        let mut bytes = b"0123456789".to_vec();
        assert!(check_write("c", &mut bytes).is_ok());
        assert_eq!(bytes, b"0123456");
        // Rules render back to the same spec shape.
        let rule = FailRule::at("a.b", FailAction::Err, &[1, 3]);
        assert_eq!(rule.to_spec(), "a.b=err@1,3");
        assert_eq!(
            FailRule::every("c", FailAction::Torn(Some(7))).to_spec(),
            "c=torn:7@*"
        );
        clear();
        assert!(!armed());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _gate = exclusive();
        assert!(configure("no-equals").is_err());
        assert!(configure("p=explode@1").is_err());
        assert!(configure("p=err@zero").is_err());
        assert!(configure("p=err@0").is_err(), "hit indices are 1-based");
        assert!(!armed(), "a rejected spec must not leave points armed");
        // A rejected configure after a good one leaves the table disarmed,
        // never half-armed.
        configure("p=err@1").unwrap();
        assert!(configure("q=bogus").is_err());
        assert!(!armed());
        clear();
    }
}
