//! Fair multi-job scheduling on the shared worker pool.

use crate::{CancelToken, Interrupt, PoolScope, WorkerPool};
use clapton_telemetry::metrics::{registry, Counter, Histogram};
use serde::{Deserialize, Serialize};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

struct SchedMetrics {
    started: Arc<Counter>,
    rounds: Arc<Counter>,
    round_latency: Arc<Histogram>,
    dispatch_lag: Arc<Histogram>,
}

fn sched_metrics() -> &'static SchedMetrics {
    static METRICS: OnceLock<SchedMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SchedMetrics {
        started: registry().counter(
            "clapton_jobs_started_total",
            "Scheduled jobs that began executing",
        ),
        rounds: registry().counter(
            "clapton_job_rounds_total",
            "Progress rounds emitted by scheduled jobs",
        ),
        round_latency: registry().histogram(
            "clapton_round_latency_seconds",
            "Time between consecutive round events of one job",
            &[
                0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
            ],
        ),
        dispatch_lag: registry().histogram(
            "clapton_dispatch_lag_seconds",
            "Time from job creation to the moment its body starts on the pool",
            &[1e-5, 1e-4, 1e-3, 0.01, 0.1, 1.0, 10.0],
        ),
    })
}

/// What happened inside a scheduled job (streamed over a channel while the
/// suite runs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// The job started executing.
    Started,
    /// One unit of job progress: `(round, best loss so far)`.
    Round(usize, f64),
    /// A checkpoint for the given round was persisted.
    Checkpointed(usize),
    /// The job finished; the payload is a short human-readable outcome.
    Finished(String),
    /// The job halted early (budget exhausted / interrupt requested) after
    /// the given number of completed rounds.
    Suspended(usize),
    /// The job was cooperatively cancelled after the given number of
    /// completed rounds; this is terminal (a suspend is not).
    Cancelled(usize),
}

/// A progress event of one job in a scheduled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunEvent {
    /// Name of the job that emitted the event.
    pub job: String,
    /// What happened.
    pub kind: EventKind,
    /// Wall-clock emit time, nanoseconds since the Unix epoch — orders
    /// events across processes (subject to clock skew).
    pub unix_ns: u64,
    /// Monotonic emit time, nanoseconds since this process's telemetry
    /// epoch — orders events within one process exactly.
    pub mono_ns: u64,
}

impl RunEvent {
    /// An event for `job` stamped with the current wall and monotonic
    /// clocks.
    pub fn now(job: impl Into<String>, kind: EventKind) -> RunEvent {
        RunEvent {
            job: job.into(),
            kind,
            unix_ns: clapton_telemetry::wall_ns(),
            mono_ns: clapton_telemetry::mono_ns(),
        }
    }
}

/// Per-job handle passed to job closures: the shared pool for nested
/// parallelism plus the event stream.
#[derive(Debug)]
pub struct JobContext {
    pool: Arc<WorkerPool>,
    name: String,
    events: Option<Sender<RunEvent>>,
    cancel: CancelToken,
    /// Monotonic timestamp of the last `Started`/`Round` emit (0: none
    /// yet), feeding the round-latency histogram.
    last_mark: AtomicU64,
}

impl JobContext {
    /// The process-wide worker pool; jobs open nested scopes or pooled
    /// evaluators on it instead of spawning threads.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interruption requested for this job, if any. Job bodies poll this
    /// at their round boundaries (after checkpointing) and stop
    /// cooperatively — nothing is ever torn down mid-round.
    pub fn interrupt(&self) -> Interrupt {
        self.cancel.interrupt()
    }

    /// The job's cancellation token (cloneable; the controlling side usually
    /// keeps its own clone from [`ScheduledJob::with_cancel`]).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Streams a progress event (dropped silently when no listener is
    /// attached or the receiver hung up — progress must never block a job).
    /// `Started`/`Round` emits also feed the scheduler's round metrics.
    pub fn emit(&self, kind: EventKind) {
        let now = clapton_telemetry::mono_ns();
        match kind {
            EventKind::Started => {
                self.last_mark.store(now, Ordering::Relaxed);
                sched_metrics().started.inc();
            }
            EventKind::Round(..) => {
                let previous = self.last_mark.swap(now, Ordering::Relaxed);
                let metrics = sched_metrics();
                metrics.rounds.inc();
                if previous != 0 {
                    metrics
                        .round_latency
                        .observe(now.saturating_sub(previous) as f64 / 1e9);
                }
            }
            _ => {}
        }
        if let Some(events) = &self.events {
            let _ = events.send(RunEvent {
                job: self.name.clone(),
                kind,
                unix_ns: clapton_telemetry::wall_ns(),
                mono_ns: now,
            });
        }
    }
}

/// One schedulable unit of work producing a `T`.
pub struct ScheduledJob<'a, T> {
    name: String,
    cancel: CancelToken,
    /// When the job was packaged; start minus this is the dispatch lag.
    created: Instant,
    run: Box<dyn FnOnce(&JobContext) -> T + Send + 'a>,
}

impl<'a, T> ScheduledJob<'a, T> {
    /// Packages a closure as a named job (with a fresh, never-fired
    /// cancellation token).
    pub fn new(
        name: impl Into<String>,
        run: impl FnOnce(&JobContext) -> T + Send + 'a,
    ) -> ScheduledJob<'a, T> {
        ScheduledJob::with_cancel(name, CancelToken::new(), run)
    }

    /// Packages a closure as a named job observing `cancel`: the token is
    /// exposed to the job body through [`JobContext::interrupt`], and the
    /// caller keeps (clones of) it to request cooperative interruption
    /// while the job runs.
    pub fn with_cancel(
        name: impl Into<String>,
        cancel: CancelToken,
        run: impl FnOnce(&JobContext) -> T + Send + 'a,
    ) -> ScheduledJob<'a, T> {
        ScheduledJob {
            name: name.into(),
            cancel,
            created: Instant::now(),
            run: Box::new(run),
        }
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl<T> std::fmt::Debug for ScheduledJob<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduledJob")
            .field("name", &self.name)
            .finish()
    }
}

/// Runs many jobs concurrently on one [`WorkerPool`] with fair interleaving.
///
/// Every job becomes a pool task; the population batches a job fans out
/// (nested scopes, [`PooledEvaluator`](crate::PooledEvaluator) chunks) land
/// in per-scope queues that idle workers drain round-robin — so concurrent
/// jobs share the machine instead of queueing behind each other, and a
/// single-core machine degrades to clean interleaved progress.
///
/// # Example
///
/// ```
/// use clapton_runtime::{JobScheduler, ScheduledJob, WorkerPool};
/// use std::sync::Arc;
///
/// let scheduler = JobScheduler::new(Arc::new(WorkerPool::with_workers(2)));
/// let jobs = (0..4)
///     .map(|i| ScheduledJob::new(format!("square-{i}"), move |_ctx| i * i))
///     .collect();
/// assert_eq!(scheduler.run_all(jobs, None), vec![0, 1, 4, 9]);
/// ```
#[derive(Debug, Clone)]
pub struct JobScheduler {
    pool: Arc<WorkerPool>,
}

impl JobScheduler {
    /// A scheduler dispatching onto `pool`.
    pub fn new(pool: Arc<WorkerPool>) -> JobScheduler {
        JobScheduler { pool }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Runs all jobs to completion, returning their results in job order.
    /// Progress is streamed to `events` when provided.
    ///
    /// # Panics
    ///
    /// Propagates the first job panic after every job has finished. Callers
    /// that must survive a dying job use [`JobScheduler::try_run_all`].
    pub fn run_all<'a, T: Send>(
        &self,
        jobs: Vec<ScheduledJob<'a, T>>,
        events: Option<Sender<RunEvent>>,
    ) -> Vec<T> {
        match self.try_run_all(jobs, events) {
            (results, None) => results
                .into_iter()
                .map(|r| r.expect("no panic was raised, so every job produced a result"))
                .collect(),
            (_, Some(payload)) => panic::resume_unwind(payload),
        }
    }

    /// Runs all jobs to completion like [`JobScheduler::run_all`], but never
    /// panics: a job that dies (panics) yields `None` in its result slot,
    /// and the first captured panic payload is returned alongside the
    /// results instead of being re-raised. Sibling jobs always run to
    /// completion either way.
    pub fn try_run_all<'a, T: Send>(
        &self,
        jobs: Vec<ScheduledJob<'a, T>>,
        events: Option<Sender<RunEvent>>,
    ) -> (Vec<Option<T>>, Option<Box<dyn std::any::Any + Send>>) {
        let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            self.pool.scope(|s: &PoolScope<'_, '_>| {
                for (job, slot) in jobs.into_iter().zip(&slots) {
                    let ctx = JobContext {
                        pool: Arc::clone(&self.pool),
                        name: job.name,
                        events: events.clone(),
                        cancel: job.cancel,
                        last_mark: AtomicU64::new(0),
                    };
                    let run = job.run;
                    let created = job.created;
                    s.spawn(move || {
                        sched_metrics()
                            .dispatch_lag
                            .observe(created.elapsed().as_secs_f64());
                        ctx.emit(EventKind::Started);
                        let out = run(&ctx);
                        if let Ok(mut slot) = slot.lock() {
                            *slot = Some(out);
                        }
                    });
                }
            });
        }));
        let results = slots
            .into_iter()
            .map(|slot| match slot.into_inner() {
                Ok(value) => value,
                Err(poisoned) => poisoned.into_inner(),
            })
            .collect();
        (results, outcome.err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn results_come_back_in_job_order() {
        let scheduler = JobScheduler::new(Arc::new(WorkerPool::with_workers(2)));
        let jobs: Vec<ScheduledJob<usize>> = (0..10)
            .map(|i| ScheduledJob::new(format!("job-{i}"), move |_| i * 7))
            .collect();
        assert_eq!(
            scheduler.run_all(jobs, None),
            (0..10).map(|i| i * 7).collect::<Vec<_>>()
        );
    }

    #[test]
    fn jobs_share_the_pool_for_nested_batches() {
        let scheduler = JobScheduler::new(Arc::new(WorkerPool::with_workers(1)));
        let touched = AtomicUsize::new(0);
        let jobs: Vec<ScheduledJob<usize>> = (0..6)
            .map(|i| {
                let touched = &touched;
                ScheduledJob::new(format!("fanout-{i}"), move |ctx: &JobContext| {
                    ctx.pool().scope(|s| {
                        for _ in 0..16 {
                            s.spawn(|| {
                                touched.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                    i
                })
            })
            .collect();
        let results = scheduler.run_all(jobs, None);
        assert_eq!(results, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(touched.load(Ordering::Relaxed), 6 * 16);
    }

    #[test]
    fn events_stream_start_and_custom_kinds() {
        let scheduler = JobScheduler::new(Arc::new(WorkerPool::with_workers(1)));
        let (tx, rx) = mpsc::channel();
        let jobs: Vec<ScheduledJob<()>> = (0..3)
            .map(|i| {
                ScheduledJob::new(format!("j{i}"), move |ctx: &JobContext| {
                    ctx.emit(EventKind::Round(1, 0.5));
                    ctx.emit(EventKind::Finished("ok".to_string()));
                })
            })
            .collect();
        scheduler.run_all(jobs, Some(tx));
        let events: Vec<RunEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 9, "3 jobs x (started + round + finished)");
        for i in 0..3 {
            let name = format!("j{i}");
            let mine: Vec<&RunEvent> = events.iter().filter(|e| e.job == name).collect();
            assert_eq!(mine[0].kind, EventKind::Started);
            assert_eq!(mine[1].kind, EventKind::Round(1, 0.5));
            assert_eq!(mine[2].kind, EventKind::Finished("ok".to_string()));
        }
    }

    #[test]
    fn try_run_all_survives_a_dying_job() {
        let scheduler = JobScheduler::new(Arc::new(WorkerPool::with_workers(1)));
        let jobs = vec![
            ScheduledJob::new("ok-1", |_: &JobContext| 1usize),
            ScheduledJob::new("boom", |_: &JobContext| -> usize {
                panic!("job body died")
            }),
            ScheduledJob::new("ok-2", |_: &JobContext| 2usize),
        ];
        let (results, payload) = scheduler.try_run_all(jobs, None);
        assert_eq!(results, vec![Some(1), None, Some(2)]);
        let payload = payload.expect("panic payload captured");
        let text = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned());
        assert_eq!(text.as_deref(), Some("job body died"));
    }

    #[test]
    fn cancel_token_reaches_the_job_context() {
        let scheduler = JobScheduler::new(Arc::new(WorkerPool::with_workers(1)));
        let token = CancelToken::new();
        token.cancel();
        let fresh = ScheduledJob::new("fresh", |ctx: &JobContext| ctx.interrupt());
        let cancelled =
            ScheduledJob::with_cancel("cancelled", token, |ctx: &JobContext| ctx.interrupt());
        assert_eq!(
            scheduler.run_all(vec![fresh, cancelled], None),
            vec![Interrupt::None, Interrupt::Cancel]
        );
    }

    #[test]
    fn events_round_trip_through_json() {
        let event = RunEvent::now("ising(J=0.25)", EventKind::Round(3, -12.625));
        assert!(event.unix_ns > 0, "wall clock stamped");
        let json = serde_json::to_string(&event).unwrap();
        assert_eq!(serde_json::from_str::<RunEvent>(&json).unwrap(), event);
    }

    #[test]
    fn emitted_events_carry_ordered_monotonic_timestamps() {
        let scheduler = JobScheduler::new(Arc::new(WorkerPool::with_workers(0)));
        let (tx, rx) = mpsc::channel();
        let job = ScheduledJob::new("stamped", |ctx: &JobContext| {
            ctx.emit(EventKind::Round(1, 0.0));
            ctx.emit(EventKind::Finished("ok".to_string()));
        });
        scheduler.run_all(vec![job], Some(tx));
        let events: Vec<RunEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 3);
        assert!(
            events.windows(2).all(|w| w[0].mono_ns <= w[1].mono_ns),
            "monotonic stamps order in-process events"
        );
        assert!(events.iter().all(|e| e.unix_ns > 0));
    }
}
