//! The persistent work-stealing worker pool.
//!
//! One [`WorkerPool`] is created per process (or per suite run) and shared by
//! every consumer — population-batch evaluation, GA instance rounds, and
//! whole scheduler jobs — replacing the per-batch `std::thread::scope` spawns
//! of the previous design. Work is organized in [`PoolScope`]s:
//!
//! * [`WorkerPool::scope`] opens a scope whose spawned closures may borrow
//!   from the caller's stack (like `std::thread::scope`), registers the
//!   scope's task queue with the pool, and — crucially — **drains its own
//!   queue on the calling thread** while waiting. The caller is always a
//!   productive worker, so a pool with zero workers still executes
//!   everything inline, and nested scopes (a job spawning population
//!   batches) can never deadlock: every scope's owner drains the tasks it
//!   created, and stolen tasks complete on whichever worker took them.
//! * Idle pool workers *steal* from the registered scope queues round-robin,
//!   oldest scope first — so concurrently running jobs have their batches
//!   interleaved fairly instead of one job monopolizing the pool.

use clapton_telemetry::metrics::{registry, Counter, Gauge};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// Process-wide pool metrics (pools share the global registry, so several
/// pools in one process aggregate into the same series).
struct PoolMetrics {
    spawned: Arc<Counter>,
    stolen: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    busy: Arc<Gauge>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        spawned: registry().counter(
            "clapton_pool_tasks_spawned_total",
            "Tasks spawned onto pool scopes",
        ),
        stolen: registry().counter(
            "clapton_pool_tasks_stolen_total",
            "Tasks taken by idle pool workers (rest ran on scope owners)",
        ),
        queue_depth: registry().gauge(
            "clapton_pool_queue_depth",
            "Tasks currently queued across all live scopes",
        ),
        busy: registry().gauge(
            "clapton_pool_workers_busy",
            "Pool worker threads currently executing a task",
        ),
    })
}

/// A type-erased unit of work.
///
/// The `'static` bound is a lie told to the type system: tasks are created
/// with the scope's `'env` lifetime and transmuted. Soundness rests on
/// [`WorkerPool::scope`] never returning (even under panics) before every
/// spawned task has run to completion.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Completion state shared between a scope and its spawned tasks.
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// Panic payloads captured from tasks, re-raised when the scope closes.
    panics: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
}

/// A scope's task queue, registered with the pool so workers can steal.
struct ScopeQueue {
    tasks: Mutex<VecDeque<Task>>,
    state: ScopeState,
}

impl ScopeQueue {
    fn new() -> ScopeQueue {
        ScopeQueue {
            tasks: Mutex::new(VecDeque::new()),
            state: ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panics: Mutex::new(Vec::new()),
            },
        }
    }

    fn pop(&self) -> Option<Task> {
        let task = self.tasks.lock().expect("scope queue").pop_front();
        if task.is_some() {
            pool_metrics().queue_depth.dec();
        }
        task
    }
}

/// State shared by all workers of a pool.
struct PoolShared {
    /// Live scope queues in creation order. Cleaned up lazily.
    scopes: Mutex<Vec<Weak<ScopeQueue>>>,
    /// Generation counter bumped on every spawn and on shutdown, so sleeping
    /// workers never miss a wakeup.
    signal: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    /// Wakes the workers after new tasks became available (or on shutdown).
    fn bump(&self) {
        let mut gen = self.signal.lock().expect("pool signal");
        *gen += 1;
        drop(gen);
        self.wake.notify_all();
    }

    /// Steals one task, scanning the live scopes round-robin from `start`.
    fn steal(&self, start: usize) -> Option<Task> {
        let queues: Vec<Arc<ScopeQueue>> = {
            let mut scopes = self.scopes.lock().expect("pool scopes");
            scopes.retain(|w| w.strong_count() > 0);
            scopes.iter().filter_map(Weak::upgrade).collect()
        };
        if queues.is_empty() {
            return None;
        }
        let n = queues.len();
        (0..n).find_map(|i| queues[(start + i) % n].pop())
    }
}

/// A persistent pool of worker threads executing scoped tasks.
///
/// See the [module docs](self) for the execution model. The pool is cheap to
/// share (`Arc<WorkerPool>`); dropping the last handle shuts the workers
/// down. A pool with zero workers is valid and runs every scope inline on
/// the calling thread — handy for tests and for forcing serial execution.
///
/// # Example
///
/// ```
/// use clapton_runtime::WorkerPool;
///
/// let pool = WorkerPool::with_workers(2);
/// let mut squares = vec![0u64; 8];
/// pool.scope(|s| {
///     for (i, slot) in squares.iter_mut().enumerate() {
///         s.spawn(move || *slot = (i as u64) * (i as u64));
///     }
/// });
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with one worker per available core.
    pub fn new() -> WorkerPool {
        WorkerPool::with_workers(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// A pool with exactly `workers` threads (`0` runs scopes inline).
    pub fn with_workers(workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            scopes: Mutex::new(Vec::new()),
            signal: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clapton-worker-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads (callers waiting on a scope work too, so the
    /// effective parallelism of a blocking caller is `workers() + 1`).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f` with a [`PoolScope`] that can spawn borrowing tasks, then
    /// executes/awaits every spawned task before returning.
    ///
    /// The calling thread drains the scope's own queue while waiting, so
    /// progress never depends on a free pool worker. Panics from tasks (and
    /// from `f` itself) are propagated after all tasks have finished.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let queue = Arc::new(ScopeQueue::new());
        self.shared
            .scopes
            .lock()
            .expect("pool scopes")
            .push(Arc::downgrade(&queue));
        let scope = PoolScope {
            pool: self,
            queue: Arc::clone(&queue),
            _env: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Drain our own queue: the caller is a worker for its own scope.
        while let Some(task) = queue.pop() {
            task();
        }
        // Await tasks stolen by pool workers.
        let mut pending = queue.state.pending.lock().expect("scope pending");
        while *pending > 0 {
            pending = queue.state.done.wait(pending).expect("scope pending");
        }
        drop(pending);
        let panics = std::mem::take(&mut *queue.state.panics.lock().expect("scope panics"));
        drop(scope);
        drop(queue);
        self.shared
            .scopes
            .lock()
            .expect("pool scopes")
            .retain(|w| w.strong_count() > 0);
        match result {
            Err(payload) => panic::resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = panics.into_iter().next() {
                    panic::resume_unwind(payload);
                }
                value
            }
        }
    }
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.bump();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
///
/// Tasks may borrow anything from the enclosing stack frame (`'env`). Tasks
/// cannot spawn siblings onto the same scope (the handle's lifetime forbids
/// capturing it), which is what makes the owner's drain-then-wait join
/// deadlock-free; tasks that need their own parallelism open a fresh nested
/// scope on the pool.
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    queue: Arc<ScopeQueue>,
    /// Invariant in `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Queues `f` for execution by the pool (or by the scope owner when it
    /// drains the queue at scope close).
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        *self.queue.state.pending.lock().expect("scope pending") += 1;
        let queue = Arc::clone(&self.queue);
        // Capture the spawning thread's telemetry context so spans created
        // inside the task attach to the spawner's trace, wherever it runs.
        let telemetry_ctx = clapton_telemetry::current_context();
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let _telemetry = clapton_telemetry::push_context(telemetry_ctx);
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                queue
                    .state
                    .panics
                    .lock()
                    .expect("scope panics")
                    .push(payload);
            }
            let mut pending = queue.state.pending.lock().expect("scope pending");
            *pending -= 1;
            if *pending == 0 {
                queue.state.done.notify_all();
            }
        });
        // SAFETY: the task is erased to `'static` but only lives until
        // `WorkerPool::scope` returns — the scope drains its queue and waits
        // for `pending == 0` before returning, on success *and* on panic, so
        // no `'env` borrow is ever used after `'env` ends.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        self.queue
            .tasks
            .lock()
            .expect("scope queue")
            .push_back(task);
        let metrics = pool_metrics();
        metrics.spawned.inc();
        metrics.queue_depth.inc();
        self.pool.shared.bump();
    }
}

/// The worker thread body: steal round-robin across scopes, park when idle.
fn worker_loop(shared: &PoolShared, idx: usize) {
    let metrics = pool_metrics();
    let worker = idx.to_string();
    let busy_ns = registry().counter_with(
        "clapton_pool_worker_busy_ns_total",
        "Nanoseconds each pool worker spent executing tasks",
        &[("worker", &worker)],
    );
    let idle_ns = registry().counter_with(
        "clapton_pool_worker_idle_ns_total",
        "Nanoseconds each pool worker spent parked waiting for work",
        &[("worker", &worker)],
    );
    let mut rotate = idx;
    loop {
        let observed = *shared.signal.lock().expect("pool signal");
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(task) = shared.steal(rotate) {
            rotate = rotate.wrapping_add(1);
            metrics.stolen.inc();
            metrics.busy.inc();
            let started = clapton_telemetry::enabled().then(Instant::now);
            task();
            if let Some(started) = started {
                busy_ns.add(started.elapsed().as_nanos() as u64);
            }
            metrics.busy.dec();
            continue;
        }
        let parked = clapton_telemetry::enabled().then(Instant::now);
        let mut gen = shared.signal.lock().expect("pool signal");
        // Re-check under the lock: a spawn between our steal attempt and
        // here bumped the generation, so we skip the wait instead of
        // sleeping through the wakeup.
        while *gen == observed && !shared.shutdown.load(Ordering::SeqCst) {
            gen = shared.wake.wait(gen).expect("pool signal");
        }
        drop(gen);
        if let Some(parked) = parked {
            idle_ns.add(parked.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_all_tasks_with_and_without_workers() {
        for workers in [0, 1, 3] {
            let pool = WorkerPool::with_workers(workers);
            let counter = AtomicUsize::new(0);
            pool.scope(|s| {
                for _ in 0..64 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), 64, "workers {workers}");
        }
    }

    #[test]
    fn tasks_borrow_and_mutate_disjoint_slices() {
        let pool = WorkerPool::with_workers(2);
        let mut data = vec![0usize; 100];
        pool.scope(|s| {
            for (i, chunk) in data.chunks_mut(7).enumerate() {
                s.spawn(move || {
                    for v in chunk.iter_mut() {
                        *v = i + 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[99], 100usize.div_ceil(7));
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Jobs (outer tasks) each fan out an inner batch on the same pool,
        // with fewer workers than jobs — the regime of the suite runner.
        let pool = WorkerPool::with_workers(1);
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let pool = &pool;
                let total = &total;
                s.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = WorkerPool::with_workers(1);
        let out = pool.scope(|s| {
            s.spawn(|| {});
            41 + 1
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn task_panics_propagate_after_all_tasks_finish() {
        let pool = WorkerPool::with_workers(1);
        let finished = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
                for _ in 0..8 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            8,
            "siblings still ran to completion"
        );
        // The pool survives and remains usable.
        let again = AtomicUsize::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                again.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(again.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        let pool = Arc::new(WorkerPool::with_workers(2));
        let total = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        pool.scope(|s| {
                            for _ in 0..5 {
                                let total = &total;
                                s.spawn(move || {
                                    total.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 10 * 5);
    }
}
