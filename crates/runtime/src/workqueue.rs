//! The shared, crash-tolerant work queue over the run registry.
//!
//! Multiple worker *processes* (on one host or many, over a shared
//! filesystem) cooperate on one [`RunRegistry`] by leasing per-job artifact
//! directories. The directory is the unit of ownership; ownership is a
//! `claim.json` lease file inside it:
//!
//! * **Claim** — the claimant serializes a [`LeaseClaim`] to a temporary
//!   sibling and `hard_link`s it to `claim.json`. Link creation is atomic
//!   and fails with `AlreadyExists` when a claim is present, so exactly one
//!   of N racing claimants wins (plain rename would silently overwrite).
//! * **Heartbeat** — the owner periodically rewrites the claim in place
//!   (open-without-create, so a stolen claim is detected as `NotFound`),
//!   which refreshes the file's mtime. Liveness is judged from mtime age.
//! * **Expiry / steal** — a claim whose mtime is older than the lease TTL
//!   belongs to a dead owner. A stealer renames `claim.json` to a private
//!   temporary name — rename succeeds for exactly one of N racing stealers,
//!   the rest observe `NotFound` and retry — then claims normally. The new
//!   owner resumes the job from its last round checkpoint; because round
//!   checkpoints are deterministic and byte-identical (PR 2/PR 5), even the
//!   pathological "presumed-dead owner was merely slow" race only ever
//!   produces identical artifact bytes.
//! * **Release** — the owner removes `claim.json` (after verifying it still
//!   owns it). A released lease is immediately reclaimable by anyone.
//!
//! TTL tuning: heartbeats run every `TTL / 4` (floor 25 ms), so a TTL must
//! comfortably exceed worst-case heartbeat jitter on the shared filesystem.
//! The 30 s default suits NFS-backed multi-host queues; single-host CI can
//! drop to ~2 s for fast takeover tests.

use crate::checkpoint::{artifact_slug, RunRegistry};
use clapton_telemetry::metrics::{registry, Gauge};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// File name of the lease inside a leased job directory.
pub const CLAIM_ARTIFACT: &str = "claim.json";

/// Default lease TTL — generous enough for NFS mtime propagation; override
/// per queue for fast-takeover tests.
pub const DEFAULT_LEASE_TTL: Duration = Duration::from_secs(30);

/// How many claim/steal rounds to attempt before conservatively reporting
/// the lease as held (each round loses only to another live claimant, so in
/// practice one or two rounds settle it).
const CLAIM_ATTEMPTS: usize = 8;

/// The serialized body of a `claim.json` lease file.
///
/// The *content* identifies the owner; *liveness* is carried by the file's
/// mtime, refreshed on every heartbeat rewrite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseClaim {
    /// Owner identity (unique per worker process).
    pub owner: String,
    /// Wall-clock milliseconds when the lease was acquired.
    pub acquired_unix_ms: u64,
    /// Heartbeats written since acquisition.
    pub heartbeats: u64,
}

/// Read-only view of a job directory's lease, as seen by an observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseState {
    /// Owner recorded in the claim (`"<unreadable>"` for a claim caught
    /// mid-rewrite).
    pub owner: String,
    /// Age of the last heartbeat (mtime), on the observer's clock.
    pub heartbeat_age: Duration,
    /// Whether the age exceeds the observer's TTL — i.e. the lease is
    /// stealable.
    pub stale: bool,
}

/// Outcome of a claim attempt.
#[derive(Debug)]
pub enum ClaimOutcome {
    /// The lease was acquired (fresh, re-entrant, or via stale takeover).
    Acquired(Lease),
    /// A live owner holds the lease; `heartbeat_age` says how recently it
    /// proved liveness.
    Held {
        /// The current owner.
        owner: String,
        /// Age of the owner's last heartbeat.
        heartbeat_age: Duration,
    },
}

/// Worker-labelled lease counters plus the shared queue-depth gauge.
struct QueueMetrics {
    depth: Arc<Gauge>,
}

fn queue_metrics() -> &'static QueueMetrics {
    static METRICS: OnceLock<QueueMetrics> = OnceLock::new();
    METRICS.get_or_init(|| QueueMetrics {
        depth: registry().gauge(
            "clapton_workqueue_depth",
            "Unfinished jobs observed in the shared work queue at the last scan",
        ),
    })
}

fn count_claim(owner: &str) {
    registry()
        .counter_with(
            "clapton_workqueue_claims_total",
            "Job-directory leases acquired, by worker",
            &[("worker", owner)],
        )
        .inc();
}

fn count_steal(owner: &str) {
    registry()
        .counter_with(
            "clapton_workqueue_steals_total",
            "Stale leases taken over from dead owners, by stealing worker",
            &[("worker", owner)],
        )
        .inc();
}

fn count_expired(owner: &str) {
    registry()
        .counter_with(
            "clapton_workqueue_expired_total",
            "Leases observed past their TTL, by observing worker",
            &[("worker", owner)],
        )
        .inc();
}

fn count_released(owner: &str) {
    registry()
        .counter_with(
            "clapton_workqueue_released_total",
            "Leases released cleanly, by worker",
            &[("worker", owner)],
        )
        .inc();
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64
}

/// A stable identity for this worker process: `w<pid>-<hex nanos at first
/// use>`. Pid alone is ambiguous across hosts sharing one queue directory;
/// the timestamp component disambiguates without requiring configuration.
pub fn default_worker_id() -> &'static str {
    static ID: OnceLock<String> = OnceLock::new();
    ID.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos() as u64;
        format!("w{}-{:x}", std::process::id(), nanos & 0xffff_ffff)
    })
}

/// Reads the claim beside `claim_path`, returning the parsed body (or a
/// placeholder for a claim caught mid-rewrite) plus its mtime age.
fn read_claim(claim_path: &Path) -> io::Result<Option<(LeaseClaim, Duration)>> {
    let meta = match fs::metadata(claim_path) {
        Ok(meta) => meta,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let age = meta
        .modified()
        .ok()
        .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
        .unwrap_or(Duration::ZERO);
    let text = match fs::read_to_string(claim_path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let claim = serde_json::from_str(&text).unwrap_or(LeaseClaim {
        owner: "<unreadable>".to_string(),
        acquired_unix_ms: 0,
        heartbeats: 0,
    });
    Ok(Some((claim, age)))
}

/// Writes a fresh claim to a private temporary sibling and tries to
/// `hard_link` it into place. Returns `Ok(None)` when another claim already
/// exists (lost the race).
fn attempt_link(dir: &Path, claim_path: &Path, owner: &str) -> io::Result<Option<Lease>> {
    let claim = LeaseClaim {
        owner: owner.to_string(),
        acquired_unix_ms: now_unix_ms(),
        heartbeats: 0,
    };
    let json = serde_json::to_string_pretty(&claim)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = dir.join(format!("{CLAIM_ARTIFACT}.{}.tmp", artifact_slug(owner)));
    fs::write(&tmp, json.as_bytes())?;
    crate::failpoint::check("workqueue.claim.hardlink").inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    let linked = fs::hard_link(&tmp, claim_path);
    let _ = fs::remove_file(&tmp);
    match linked {
        Ok(()) => Ok(Some(Lease {
            dir: dir.to_path_buf(),
            owner: owner.to_string(),
            acquired_unix_ms: claim.acquired_unix_ms,
            heartbeats: 0,
        })),
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(None),
        Err(e) => Err(e),
    }
}

/// Observes the lease on job directory `dir` without touching it: `None`
/// when unleased, otherwise the owner, heartbeat age, and whether `ttl`
/// judges it stale.
pub fn lease_state(dir: &Path, ttl: Duration) -> io::Result<Option<LeaseState>> {
    Ok(
        read_claim(&dir.join(CLAIM_ARTIFACT))?.map(|(claim, age)| LeaseState {
            owner: claim.owner,
            heartbeat_age: age,
            stale: age > ttl,
        }),
    )
}

/// Tries to lease job directory `dir` for `owner`.
///
/// Exactly one of N racing distinct owners acquires; a claim already held
/// by `owner` itself is re-entrant (layers of one process share the lease);
/// a claim whose heartbeat is older than `ttl` is taken over.
pub fn acquire(dir: &Path, owner: &str, ttl: Duration) -> io::Result<ClaimOutcome> {
    let claim_path = dir.join(CLAIM_ARTIFACT);
    let mut last_seen: Option<(String, Duration)> = None;
    for _ in 0..CLAIM_ATTEMPTS {
        match read_claim(&claim_path)? {
            None => {
                if let Some(lease) = attempt_link(dir, &claim_path, owner)? {
                    count_claim(owner);
                    return Ok(ClaimOutcome::Acquired(lease));
                }
                // Lost the creation race; re-read to see who won.
            }
            Some((claim, _)) if claim.owner == owner => {
                // Re-entrant: adopt the existing claim and refresh its mtime.
                let mut lease = Lease {
                    dir: dir.to_path_buf(),
                    owner: owner.to_string(),
                    acquired_unix_ms: claim.acquired_unix_ms,
                    heartbeats: claim.heartbeats,
                };
                lease.heartbeat()?;
                return Ok(ClaimOutcome::Acquired(lease));
            }
            Some((_claim, age)) if age > ttl => {
                count_expired(owner);
                // Rename-away: exactly one of N racing stealers wins.
                let stale_tmp = dir.join(format!(
                    "{CLAIM_ARTIFACT}.stale.{}.tmp",
                    artifact_slug(owner)
                ));
                match fs::rename(&claim_path, &stale_tmp) {
                    Ok(()) => {
                        let _ = fs::remove_file(&stale_tmp);
                        count_steal(owner);
                        // Claim the now-vacant slot on the next iteration.
                    }
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {
                        // Another stealer (or a release) got there first.
                    }
                    Err(e) => return Err(e),
                }
            }
            Some((claim, age)) => {
                return Ok(ClaimOutcome::Held {
                    owner: claim.owner,
                    heartbeat_age: age,
                });
            }
        }
        if let Some((claim, age)) = read_claim(&claim_path)? {
            last_seen = Some((claim.owner, age));
        }
    }
    // Every attempt lost a race to some *live* claimant — report held.
    let (owner, heartbeat_age) =
        last_seen.unwrap_or_else(|| ("<contended>".to_string(), Duration::ZERO));
    Ok(ClaimOutcome::Held {
        owner,
        heartbeat_age,
    })
}

/// An acquired lease on one job directory.
///
/// Dropping a `Lease` does **not** release it (the owner may legitimately
/// outlive the handle, e.g. across a keeper thread handoff); call
/// [`Lease::release`] — or hold it in a [`LeaseKeeper`], whose drop
/// releases.
#[derive(Debug)]
pub struct Lease {
    dir: PathBuf,
    owner: String,
    acquired_unix_ms: u64,
    heartbeats: u64,
}

impl Lease {
    /// The leased job directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The owner identity this lease was acquired with.
    pub fn owner(&self) -> &str {
        &self.owner
    }

    /// Rewrites the claim in place, refreshing its mtime.
    ///
    /// Returns `Ok(false)` — without touching anything — when the lease has
    /// been stolen (claim gone or owned by someone else): the caller no
    /// longer owns the directory and must stop writing checkpoints into it.
    pub fn heartbeat(&mut self) -> io::Result<bool> {
        // An injected error here stands the owner down (`LeaseKeeper` maps
        // heartbeat errors to a lost lease), modeling a stalled worker whose
        // lease expires under it.
        crate::failpoint::check("workqueue.heartbeat")?;
        let claim_path = self.dir.join(CLAIM_ARTIFACT);
        // Open without `create`: a stolen-and-removed claim surfaces as
        // NotFound instead of silently resurrecting under our ownership.
        let mut file = match fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&claim_path)
        {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        match serde_json::from_str::<LeaseClaim>(&text) {
            Ok(claim) if claim.owner == self.owner => {}
            // Stolen (different owner) or caught mid-rewrite by a thief —
            // either way the slot is no longer provably ours.
            _ => return Ok(false),
        }
        self.heartbeats += 1;
        let claim = LeaseClaim {
            owner: self.owner.clone(),
            acquired_unix_ms: self.acquired_unix_ms,
            heartbeats: self.heartbeats,
        };
        let json = serde_json::to_string_pretty(&claim)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        file.seek(io::SeekFrom::Start(0))?;
        file.set_len(0)?;
        file.write_all(json.as_bytes())?;
        file.flush()?;
        Ok(true)
    }

    /// Removes the claim if this lease still owns it. Idempotent: releasing
    /// a lease that was stolen (and possibly re-claimed by someone else)
    /// leaves the thief's claim untouched.
    pub fn release(self) -> io::Result<()> {
        let claim_path = self.dir.join(CLAIM_ARTIFACT);
        match read_claim(&claim_path)? {
            Some((claim, _)) if claim.owner == self.owner => {
                fs::remove_file(&claim_path)?;
                count_released(&self.owner);
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// Background heartbeat thread keeping a [`Lease`] alive while its owner
/// does long-running work.
///
/// Heartbeats run every `interval` (clamped to ≥ 25 ms). If a heartbeat
/// discovers the lease stolen, [`LeaseKeeper::lost`] flips to `true` and
/// heartbeating stops — long-running owners should poll it at checkpoint
/// boundaries and stand down. Dropping the keeper stops the thread and
/// releases the lease (best effort).
#[derive(Debug)]
pub struct LeaseKeeper {
    lost: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<Lease>>,
}

impl LeaseKeeper {
    /// Starts heartbeating `lease` every `interval`.
    pub fn spawn(lease: Lease, interval: Duration) -> LeaseKeeper {
        let interval = interval.max(Duration::from_millis(25));
        let lost = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let lost = Arc::clone(&lost);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut lease = lease;
                let tick = Duration::from_millis(10).min(interval);
                let mut since_beat = Duration::ZERO;
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    since_beat += tick;
                    if since_beat < interval {
                        continue;
                    }
                    since_beat = Duration::ZERO;
                    match lease.heartbeat() {
                        Ok(true) => {}
                        Ok(false) | Err(_) => {
                            lost.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                lease
            })
        };
        LeaseKeeper {
            lost,
            stop,
            thread: Some(thread),
        }
    }

    /// Whether a heartbeat discovered the lease stolen out from under us.
    pub fn lost(&self) -> bool {
        self.lost.load(Ordering::Acquire)
    }

    /// Stops heartbeating and releases the lease (no-op if it was lost).
    pub fn release(mut self) -> io::Result<()> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            if let Ok(lease) = thread.join() {
                if !self.lost() {
                    lease.release()?;
                }
            }
        }
        Ok(())
    }
}

impl Drop for LeaseKeeper {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// A lease-speaking view over a [`RunRegistry`]: the same directory tree,
/// plus claim/heartbeat/release coordination for one named owner.
#[derive(Debug, Clone)]
pub struct WorkQueue {
    registry: RunRegistry,
    owner: String,
    ttl: Duration,
}

impl WorkQueue {
    /// Wraps `registry` for worker `owner` with lease TTL `ttl`.
    pub fn new(registry: RunRegistry, owner: impl Into<String>, ttl: Duration) -> WorkQueue {
        WorkQueue {
            registry,
            owner: owner.into(),
            ttl,
        }
    }

    /// The owner identity claims are made under.
    pub fn owner(&self) -> &str {
        &self.owner
    }

    /// The staleness threshold for takeover.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// The underlying registry.
    pub fn registry(&self) -> &RunRegistry {
        &self.registry
    }

    /// Every job directory in the queue, sorted by job id (directory name),
    /// so scans are deterministic across hosts and filesystems.
    pub fn enumerate(&self) -> io::Result<Vec<String>> {
        self.registry.run_names()
    }

    /// Tries to claim job `job` (creating its directory if absent).
    pub fn claim(&self, job: &str) -> io::Result<ClaimOutcome> {
        let dir = self.registry.run(job)?;
        acquire(dir.path(), &self.owner, self.ttl)
    }

    /// Observes job `job`'s lease without touching it.
    pub fn lease_state(&self, job: &str) -> io::Result<Option<LeaseState>> {
        lease_state(&self.registry.path().join(job), self.ttl)
    }

    /// Heartbeats job `job`'s claim if this queue's owner holds it; returns
    /// whether the lease is still ours.
    pub fn heartbeat(&self, job: &str) -> io::Result<bool> {
        let dir = self.registry.path().join(job);
        match read_claim(&dir.join(CLAIM_ARTIFACT))? {
            Some((claim, _)) if claim.owner == self.owner => {
                let mut lease = Lease {
                    dir,
                    owner: self.owner.clone(),
                    acquired_unix_ms: claim.acquired_unix_ms,
                    heartbeats: claim.heartbeats,
                };
                lease.heartbeat()
            }
            _ => Ok(false),
        }
    }

    /// Releases job `job`'s claim if this queue's owner holds it.
    pub fn release(&self, job: &str) -> io::Result<()> {
        let lease = Lease {
            dir: self.registry.path().join(job),
            owner: self.owner.clone(),
            acquired_unix_ms: 0,
            heartbeats: 0,
        };
        lease.release()
    }

    /// Publishes the number of unfinished jobs observed by the last scan to
    /// the `clapton_workqueue_depth` gauge.
    pub fn set_depth(&self, open_jobs: usize) {
        queue_metrics().depth.set(open_jobs as f64);
    }
}

impl RunRegistry {
    /// A lease-speaking work-queue view of this registry for worker `owner`.
    pub fn work_queue(&self, owner: impl Into<String>, ttl: Duration) -> WorkQueue {
        WorkQueue::new(self.clone(), owner, ttl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "clapton-workqueue-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn claim_is_exclusive_and_reentrant() {
        let dir = scratch("excl");
        let ttl = Duration::from_secs(60);
        let first = acquire(&dir, "alpha", ttl).unwrap();
        let ClaimOutcome::Acquired(lease) = first else {
            panic!("first claim must win");
        };
        match acquire(&dir, "beta", ttl).unwrap() {
            ClaimOutcome::Held { owner, .. } => assert_eq!(owner, "alpha"),
            ClaimOutcome::Acquired(_) => panic!("beta must not co-own"),
        }
        // Same owner re-enters.
        let ClaimOutcome::Acquired(again) = acquire(&dir, "alpha", ttl).unwrap() else {
            panic!("alpha re-claims its own lease");
        };
        drop(again);
        lease.release().unwrap();
        // Released → immediately reclaimable by anyone.
        let ClaimOutcome::Acquired(stolen) = acquire(&dir, "beta", ttl).unwrap() else {
            panic!("released lease must be reclaimable");
        };
        stolen.release().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_lease_is_taken_over() {
        let dir = scratch("stale");
        let ttl = Duration::from_millis(80);
        let ClaimOutcome::Acquired(dead) = acquire(&dir, "dead-worker", ttl).unwrap() else {
            panic!("claim");
        };
        // No heartbeats: let the claim age past the TTL, then steal.
        std::thread::sleep(Duration::from_millis(160));
        let ClaimOutcome::Acquired(thief) = acquire(&dir, "thief", ttl).unwrap() else {
            panic!("stale lease must be stealable");
        };
        assert_eq!(
            lease_state(&dir, ttl).unwrap().unwrap().owner,
            "thief",
            "claim now records the thief"
        );
        // The dead owner's heartbeat must observe the theft, not resurrect.
        let mut dead = dead;
        assert!(!dead.heartbeat().unwrap());
        thief.release().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn heartbeat_refreshes_mtime() {
        let dir = scratch("beat");
        let ttl = Duration::from_millis(150);
        let ClaimOutcome::Acquired(mut lease) = acquire(&dir, "alive", ttl).unwrap() else {
            panic!("claim");
        };
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(50));
            assert!(lease.heartbeat().unwrap());
            match acquire(&dir, "vulture", ttl).unwrap() {
                ClaimOutcome::Held { owner, .. } => assert_eq!(owner, "alive"),
                ClaimOutcome::Acquired(_) => panic!("heartbeat must keep the lease alive"),
            }
        }
        lease.release().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn work_queue_claims_over_registry() {
        let root = scratch("wq");
        let registry = RunRegistry::open(&root).unwrap();
        let queue = registry.work_queue("w1", Duration::from_secs(60));
        let ClaimOutcome::Acquired(lease) = queue.claim("job-a").unwrap() else {
            panic!("claim");
        };
        let peer = registry.work_queue("w2", Duration::from_secs(60));
        assert!(matches!(
            peer.claim("job-a").unwrap(),
            ClaimOutcome::Held { .. }
        ));
        let state = peer.lease_state("job-a").unwrap().unwrap();
        assert_eq!(state.owner, "w1");
        assert!(!state.stale);
        assert!(queue.heartbeat("job-a").unwrap());
        assert!(!peer.heartbeat("job-a").unwrap(), "non-owner cannot beat");
        lease.release().unwrap();
        assert!(queue.lease_state("job-a").unwrap().is_none());
        assert_eq!(queue.enumerate().unwrap(), vec!["job-a".to_string()]);
        fs::remove_dir_all(&root).unwrap();
    }
}
