//! Cooperative interruption of scheduled jobs.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between whoever
//! controls a job (an HTTP `DELETE`, a draining server, a test) and the job
//! body itself. Jobs never stop mid-round: the GA engine observes the token
//! only at round boundaries (through [`JobContext::interrupt`]
//! [`JobContext::interrupt`]: crate::JobContext::interrupt), after the
//! round's checkpoint has been persisted — so an interrupted job is always
//! resumable (suspend) or cleanly terminal (cancel), never corrupt.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// What a job should do at its next round boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// Keep running.
    None,
    /// Persist the round checkpoint and stop *resumably*: the job stays
    /// queued and a later run continues bit-identically. Used by graceful
    /// server drain.
    Suspend,
    /// Persist a terminal `cancelled` state and stop for good.
    Cancel,
}

const RUN: u8 = 0;
const SUSPEND: u8 = 1;
const CANCEL: u8 = 2;

/// A shared, cloneable interruption flag checked at job round boundaries.
///
/// Escalation is one-way: `Suspend` can be upgraded to `Cancel`, but a
/// requested cancellation is never downgraded back to a suspend.
///
/// # Example
///
/// ```
/// use clapton_runtime::{CancelToken, Interrupt};
///
/// let token = CancelToken::new();
/// assert_eq!(token.interrupt(), Interrupt::None);
/// token.suspend();
/// assert_eq!(token.interrupt(), Interrupt::Suspend);
/// token.cancel();
/// assert_eq!(token.interrupt(), Interrupt::Cancel);
/// token.suspend(); // cannot downgrade
/// assert_eq!(token.clone().interrupt(), Interrupt::Cancel);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh token in the running state.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests a resumable stop at the next round boundary (no-op if a
    /// cancellation was already requested).
    pub fn suspend(&self) {
        let _ = self
            .state
            .compare_exchange(RUN, SUSPEND, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Requests a terminal cancellation at the next round boundary.
    pub fn cancel(&self) {
        self.state.store(CANCEL, Ordering::SeqCst);
    }

    /// The currently requested interruption, if any.
    pub fn interrupt(&self) -> Interrupt {
        match self.state.load(Ordering::SeqCst) {
            CANCEL => Interrupt::Cancel,
            SUSPEND => Interrupt::Suspend,
            _ => Interrupt::None,
        }
    }

    /// Whether a terminal cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.interrupt() == Interrupt::Cancel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert_eq!(b.interrupt(), Interrupt::None);
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn suspend_does_not_downgrade_cancel() {
        let token = CancelToken::new();
        token.cancel();
        token.suspend();
        assert_eq!(token.interrupt(), Interrupt::Cancel);
    }
}
