//! Durable run state: atomic JSON artifacts, manifests, and the run
//! registry.
//!
//! A *run directory* holds everything one suite run produces: a
//! `manifest.json` describing the configuration, one `<job>.checkpoint.json`
//! per in-flight job (replaced atomically every round), and one
//! `<job>.result.json` per finished job. Because every write is
//! tmp-file + rename, a run killed at any instant leaves only complete
//! artifacts — resuming re-reads the manifest, skips finished jobs, and
//! continues the rest from their latest round snapshot.
//!
//! # Integrity envelope
//!
//! Rename atomicity alone cannot rule out a *torn* artifact: on a crash the
//! rename may commit while the freshly written data blocks never reach the
//! disk, leaving a complete-looking file with truncated or garbled content.
//! Every JSON artifact is therefore written inside an integrity envelope — a
//! single header line carrying the payload length and FNV-1a 64 checksum,
//! followed by the exact payload bytes:
//!
//! ```text
//! {"clapton":"envelope","v":1,"len":123,"fnv64":"a1b2c3d4e5f60718"}
//! { ...payload JSON, byte-exact... }
//! ```
//!
//! Readers verify the envelope before parsing, so they can distinguish
//! *missing* from *corrupt* ([`Artifact`]): corrupt files are quarantined in
//! place (renamed to `<name>.corrupt-<unix-ms>`) and counted in
//! `clapton_artifacts_corrupt_total`, and recovery-aware callers fall back
//! to the previous round checkpoint instead of erroring the job. Bare
//! legacy JSON (no header line) is still accepted on read, so registries
//! written before the envelope existed keep resuming.

use crate::failpoint;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Configuration record of a suite run, written once at run creation and
/// verified on resume (a resume with a different seed or suite would
/// silently corrupt the run, so it is rejected instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Job names, in scheduling order.
    pub jobs: Vec<String>,
    /// The base seed every job derives its stream from.
    pub seed: u64,
    /// Free-form configuration descriptor (e.g. `"quick"` / `"paper"`).
    pub profile: String,
}

/// Turns an arbitrary job name into a stable, filesystem-safe artifact stem
/// (alphanumerics kept, everything else folded to `-`).
///
/// ```
/// assert_eq!(clapton_runtime::artifact_slug("ising(J=0.25)"), "ising-J-0.25");
/// ```
/// A per-writer temporary sibling name for the atomic write of artifact
/// `name`: `<name>.<pid>-<seq>.tmp`. Unique per (process, call) so racing
/// writers each rename their own complete file into place.
fn tmp_name(name: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "{name}.{}-{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

pub fn artifact_slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '.' || c == '_' {
            out.push(c);
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// FNV-1a 64-bit — the integrity checksum of the artifact envelope. Not
/// cryptographic; it only needs to catch torn writes and bit rot.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The envelope header line prefix — also the discriminator between
/// enveloped and legacy bare-JSON artifacts (a JSON document whose first
/// bytes spell the header's fixed key order is, by construction, a header).
const ENVELOPE_MAGIC: &[u8] = b"{\"clapton\":\"envelope\"";

#[derive(Deserialize)]
struct EnvelopeHeader {
    #[allow(dead_code)]
    clapton: String,
    v: u64,
    len: usize,
    fnv64: String,
}

/// Wraps `payload` in the integrity envelope: header line, then the exact
/// payload bytes. Public so other durable formats (e.g. the persistent
/// result cache's segment files) share the exact artifact envelope and its
/// corruption semantics.
pub fn seal_envelope(payload: &[u8]) -> Vec<u8> {
    seal(payload)
}

/// Parses one enveloped record at the *start* of `bytes` and returns the
/// verified payload plus the total number of bytes the record occupies
/// (header line + payload) — the scanning primitive for multi-record files
/// such as cache segments, where [`seal_envelope`] outputs are simply
/// concatenated.
///
/// Unlike the whole-file read path, bytes without an envelope header are an
/// error here: a concatenated record stream has no legacy bare-JSON form.
///
/// # Errors
///
/// A human-readable description of the corruption (missing header,
/// truncated payload, checksum mismatch).
pub fn open_envelope_record(bytes: &[u8]) -> Result<(&[u8], usize), String> {
    if !bytes.starts_with(ENVELOPE_MAGIC) {
        return Err("record does not start with an envelope header".to_string());
    }
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("envelope header line is unterminated")?;
    let header_text = std::str::from_utf8(&bytes[..newline])
        .map_err(|e| format!("envelope header is not UTF-8: {e}"))?;
    let header: EnvelopeHeader = serde_json::from_str(header_text)
        .map_err(|e| format!("envelope header does not parse: {e}"))?;
    if header.v != 1 {
        return Err(format!("unsupported envelope version {}", header.v));
    }
    let payload_start = newline + 1;
    let payload_end = payload_start
        .checked_add(header.len)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| {
            format!(
                "payload is {} bytes, envelope promised {} (torn write)",
                bytes.len() - payload_start,
                header.len
            )
        })?;
    let payload = &bytes[payload_start..payload_end];
    let sum = format!("{:016x}", fnv1a64(payload));
    if sum != header.fnv64 {
        return Err(format!(
            "payload checksum {sum} != enveloped {} (corrupt write)",
            header.fnv64
        ));
    }
    Ok((payload, payload_end))
}

/// Wraps `payload` in the integrity envelope: header line, then the exact
/// payload bytes.
fn seal(payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{{\"clapton\":\"envelope\",\"v\":1,\"len\":{},\"fnv64\":\"{:016x}\"}}\n",
        payload.len(),
        fnv1a64(payload)
    );
    let mut sealed = header.into_bytes();
    sealed.extend_from_slice(payload);
    sealed
}

/// Verifies and strips the envelope, returning the payload bytes. Bytes
/// without a header are legacy bare JSON and pass through unverified.
fn unseal(bytes: &[u8]) -> Result<&[u8], String> {
    if !bytes.starts_with(ENVELOPE_MAGIC) {
        return Ok(bytes);
    }
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("envelope header line is unterminated")?;
    let header_text = std::str::from_utf8(&bytes[..newline])
        .map_err(|e| format!("envelope header is not UTF-8: {e}"))?;
    let header: EnvelopeHeader = serde_json::from_str(header_text)
        .map_err(|e| format!("envelope header does not parse: {e}"))?;
    if header.v != 1 {
        return Err(format!("unsupported envelope version {}", header.v));
    }
    let payload = &bytes[newline + 1..];
    if payload.len() != header.len {
        return Err(format!(
            "payload is {} bytes, envelope promised {} (torn write)",
            payload.len(),
            header.len
        ));
    }
    let sum = format!("{:016x}", fnv1a64(payload));
    if sum != header.fnv64 {
        return Err(format!(
            "payload checksum {sum} != enveloped {} (corrupt write)",
            header.fnv64
        ));
    }
    Ok(payload)
}

/// What reading an artifact found: nothing, a verified document, or a
/// corrupt file (which has already been quarantined by the time the caller
/// sees this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Artifact<T> {
    /// The artifact does not exist.
    Missing,
    /// The artifact verified and parsed.
    Valid(T),
    /// The artifact existed but failed envelope verification or JSON
    /// parsing; it has been renamed aside so the name can be rewritten.
    Corrupt {
        /// File name the corrupt bytes were quarantined under.
        quarantined_to: String,
        /// Why verification failed.
        detail: String,
    },
}

impl<T> Artifact<T> {
    /// The document, when the artifact was present and intact.
    pub fn valid(self) -> Option<T> {
        match self {
            Artifact::Valid(value) => Some(value),
            _ => None,
        }
    }

    /// Whether the artifact was present but corrupt.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, Artifact::Corrupt { .. })
    }
}

/// One run's artifact directory with atomic JSON read/write.
#[derive(Debug, Clone)]
pub struct RunDirectory {
    root: PathBuf,
}

impl RunDirectory {
    /// Opens (creating if needed) the run directory at `root`.
    pub fn create(root: impl Into<PathBuf>) -> io::Result<RunDirectory> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(RunDirectory { root })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Whether artifact `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.root.join(name).is_file()
    }

    /// Serializes `value` to `<root>/<name>` atomically: the JSON is written
    /// to a temporary sibling and renamed into place, so readers (and
    /// resumers after a kill) only ever observe complete documents. The
    /// temporary name embeds the process id and a sequence number, so
    /// concurrent writers of the same artifact (two shard workers racing to
    /// admit a job before either holds its lease) never rename each other's
    /// half-written files away; last rename wins.
    pub fn write_json<T: Serialize + ?Sized>(&self, name: &str, value: &T) -> io::Result<()> {
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut sealed = seal(json.as_bytes());
        let target = self.root.join(name);
        let tmp = self.root.join(tmp_name(name));
        // `torn` here writes a truncated file that still gets renamed into
        // place — exactly the crash the envelope exists to catch.
        failpoint::check_write("registry.write.flush", &mut sealed)?;
        fs::write(&tmp, &sealed)?;
        failpoint::check("registry.write.rename")?;
        fs::rename(&tmp, &target)
    }

    /// Atomically replaces `name` while keeping the outgoing generation as
    /// `prev_name`: the current file (if any) is renamed to `prev_name`,
    /// then the new document is written under `name`. A crash between the
    /// two steps leaves `prev_name` valid — the reader loses at most the
    /// one round being written, never the run.
    pub fn write_json_rotating<T: Serialize + ?Sized>(
        &self,
        name: &str,
        prev_name: &str,
        value: &T,
    ) -> io::Result<()> {
        self.rotate(name, prev_name)?;
        self.write_json(name, value)
    }

    /// Renames artifact `name` to `prev_name` if it exists (replacing any
    /// previous `prev_name`); a no-op when `name` is absent.
    pub fn rotate(&self, name: &str, prev_name: &str) -> io::Result<()> {
        match fs::rename(self.root.join(name), self.root.join(prev_name)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Writes raw text to `<root>/<name>` with the same atomic
    /// temporary-then-rename discipline as [`RunDirectory::write_json`]
    /// (used for line-oriented artifacts like `telemetry.jsonl`).
    pub fn write_text(&self, name: &str, text: &str) -> io::Result<()> {
        let target = self.root.join(name);
        let tmp = self.root.join(tmp_name(name));
        fs::write(&tmp, text.as_bytes())?;
        fs::rename(&tmp, &target)
    }

    /// Reads artifact `name` as raw text, returning `Ok(None)` when it does
    /// not exist.
    pub fn read_text(&self, name: &str) -> io::Result<Option<String>> {
        match fs::read_to_string(self.root.join(name)) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Reads artifact `name`, returning `Ok(None)` when it does not exist
    /// and an `InvalidData` error when it exists but fails envelope
    /// verification or parsing — in which case the corrupt file has been
    /// quarantined (see [`RunDirectory::load`]) so a rewrite can replace it.
    pub fn read_json<T: DeserializeOwned>(&self, name: &str) -> io::Result<Option<T>> {
        match self.load(name)? {
            Artifact::Missing => Ok(None),
            Artifact::Valid(value) => Ok(Some(value)),
            Artifact::Corrupt {
                quarantined_to,
                detail,
            } => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{name}: {detail} (quarantined to {quarantined_to})"),
            )),
        }
    }

    /// Reads artifact `name`, distinguishing missing from corrupt. A file
    /// that fails envelope verification or JSON parsing is quarantined —
    /// renamed to `<name>.corrupt-<unix-ms>` so the slot is free to be
    /// rewritten — counted in `clapton_artifacts_corrupt_total`, and
    /// reported as [`Artifact::Corrupt`] rather than an error, so callers
    /// with a fallback (the previous round checkpoint, a fresh start) can
    /// take it.
    ///
    /// # Errors
    ///
    /// Real I/O failures only (permissions, disk); corruption is a value.
    pub fn load<T: DeserializeOwned>(&self, name: &str) -> io::Result<Artifact<T>> {
        let target = self.root.join(name);
        let bytes = match fs::read(&target) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Artifact::Missing),
            Err(e) => return Err(e),
        };
        let detail = match unseal(&bytes) {
            Ok(payload) => match std::str::from_utf8(payload)
                .map_err(|e| format!("payload is not UTF-8: {e}"))
                .and_then(|text| {
                    serde_json::from_str::<T>(text)
                        .map_err(|e| format!("payload does not parse: {e}"))
                }) {
                Ok(value) => return Ok(Artifact::Valid(value)),
                Err(detail) => detail,
            },
            Err(detail) => detail,
        };
        let quarantined_to = self.quarantine(name)?;
        count_corrupt(name);
        Ok(Artifact::Corrupt {
            quarantined_to,
            detail,
        })
    }

    /// Renames artifact `name` aside as `<name>.corrupt-<unix-ms>` and
    /// returns the quarantine file name. If the file vanished in the
    /// meantime (a racing writer already replaced it), the nominal
    /// quarantine name is still returned.
    fn quarantine(&self, name: &str) -> io::Result<String> {
        let millis = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let quarantined = format!("{name}.corrupt-{millis}");
        match fs::rename(self.root.join(name), self.root.join(&quarantined)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(quarantined),
        }
    }

    /// Deletes artifact `name` if present.
    pub fn remove(&self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.root.join(name)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Writes the run manifest.
    pub fn write_manifest(&self, manifest: &RunManifest) -> io::Result<()> {
        self.write_json("manifest.json", manifest)
    }

    /// Reads the run manifest, if the run was initialized.
    pub fn manifest(&self) -> io::Result<Option<RunManifest>> {
        self.read_json("manifest.json")
    }
}

fn count_corrupt(name: &str) {
    clapton_telemetry::registry()
        .counter_with(
            "clapton_artifacts_corrupt_total",
            "Artifacts that failed integrity verification and were quarantined.",
            &[("artifact", name)],
        )
        .inc();
}

/// Completion summary of one registered run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// Directory name of the run.
    pub name: String,
    /// The manifest it was created with.
    pub manifest: RunManifest,
    /// Jobs with a final result artifact.
    pub complete_jobs: usize,
    /// Jobs with only a checkpoint (interrupted mid-run).
    pub checkpointed_jobs: usize,
}

impl RunInfo {
    /// Whether every job of the run has a final result.
    pub fn is_complete(&self) -> bool {
        self.complete_jobs == self.manifest.jobs.len()
    }
}

/// A root directory containing one subdirectory per run — the registry the
/// `suite-runner` CLI lists and resumes from.
#[derive(Debug, Clone)]
pub struct RunRegistry {
    root: PathBuf,
}

impl RunRegistry {
    /// Opens (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<RunRegistry> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(RunRegistry { root })
    }

    /// The registry root.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Opens (creating if needed) the run directory for `run_name`.
    pub fn run(&self, run_name: &str) -> io::Result<RunDirectory> {
        RunDirectory::create(self.root.join(run_name))
    }

    /// Every run directory under the registry (initialized or not), sorted
    /// by name — the raw listing queue-style consumers (e.g. a job server
    /// re-admitting persisted work after a restart) scan, without requiring
    /// a suite manifest the way [`RunRegistry::list`] does.
    ///
    /// Dot-prefixed directories are reserved for registry-internal state
    /// (e.g. the `.cache` persistent result store) and never listed as runs.
    pub fn run_names(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if entry.file_type()?.is_dir() && !name.starts_with('.') {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// Summarizes every initialized run under the registry, sorted by name.
    pub fn list(&self) -> io::Result<Vec<RunInfo>> {
        let mut runs = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let dir = RunDirectory::create(entry.path())?;
            // A corrupt manifest quarantines and skips this run rather than
            // failing the whole listing — the other runs are still fine.
            let Artifact::Valid(manifest) = dir.load::<RunManifest>("manifest.json")? else {
                continue;
            };
            let mut complete = 0;
            let mut checkpointed = 0;
            for job in &manifest.jobs {
                let slug = artifact_slug(job);
                if dir.exists(&format!("{slug}.result.json")) {
                    complete += 1;
                } else if dir.exists(&format!("{slug}.checkpoint.json")) {
                    checkpointed += 1;
                }
            }
            runs.push(RunInfo {
                name,
                manifest,
                complete_jobs: complete,
                checkpointed_jobs: checkpointed,
            });
        }
        runs.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clapton-runtime-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn artifacts_round_trip_and_overwrite_atomically() {
        let dir = RunDirectory::create(scratch("rt")).unwrap();
        assert_eq!(dir.read_json::<Vec<u64>>("x.json").unwrap(), None);
        dir.write_json("x.json", &vec![1u64, 2, 3]).unwrap();
        assert_eq!(
            dir.read_json::<Vec<u64>>("x.json").unwrap(),
            Some(vec![1, 2, 3])
        );
        dir.write_json("x.json", &vec![9u64]).unwrap();
        assert_eq!(dir.read_json::<Vec<u64>>("x.json").unwrap(), Some(vec![9]));
        let leftover_tmp = fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"));
        assert!(!leftover_tmp, "tmp files renamed away");
        dir.remove("x.json").unwrap();
        dir.remove("x.json").unwrap(); // idempotent
        assert!(!dir.exists("x.json"));
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn corrupt_artifacts_error_instead_of_vanishing() {
        let dir = RunDirectory::create(scratch("corrupt")).unwrap();
        fs::write(dir.path().join("bad.json"), b"{not json").unwrap();
        let err = dir.read_json::<Vec<u64>>("bad.json").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The corrupt bytes were quarantined aside, freeing the slot.
        assert!(!dir.exists("bad.json"));
        let quarantined = fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with("bad.json.corrupt-")
            });
        assert!(quarantined.is_some(), "corrupt file renamed aside");
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn envelope_catches_torn_and_garbled_writes() {
        let dir = RunDirectory::create(scratch("envelope")).unwrap();
        dir.write_json("doc.json", &vec![1u64, 2, 3]).unwrap();
        // On disk: header line + payload.
        let bytes = fs::read(dir.path().join("doc.json")).unwrap();
        assert!(bytes.starts_with(ENVELOPE_MAGIC));
        assert_eq!(
            dir.load::<Vec<u64>>("doc.json").unwrap(),
            Artifact::Valid(vec![1, 2, 3])
        );
        // Torn write: rename committed, tail of the payload lost.
        fs::write(dir.path().join("doc.json"), &bytes[..bytes.len() - 4]).unwrap();
        let loaded = dir.load::<Vec<u64>>("doc.json").unwrap();
        assert!(loaded.is_corrupt(), "truncation detected: {loaded:?}");
        assert!(!dir.exists("doc.json"), "torn file quarantined");
        // Garbled payload of the *same* length: caught by the checksum.
        dir.write_json("doc.json", &vec![1u64, 2, 3]).unwrap();
        let mut garbled = fs::read(dir.path().join("doc.json")).unwrap();
        let last = garbled.len() - 1;
        garbled[last] ^= 0x01;
        fs::write(dir.path().join("doc.json"), &garbled).unwrap();
        assert!(dir.load::<Vec<u64>>("doc.json").unwrap().is_corrupt());
        // Missing stays distinguishable from corrupt.
        assert_eq!(dir.load::<Vec<u64>>("doc.json").unwrap(), Artifact::Missing);
        // Legacy bare JSON (pre-envelope registries) still reads.
        fs::write(dir.path().join("legacy.json"), b"[7, 8]").unwrap();
        assert_eq!(
            dir.read_json::<Vec<u64>>("legacy.json").unwrap(),
            Some(vec![7, 8])
        );
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn rotation_keeps_the_previous_generation() {
        let dir = RunDirectory::create(scratch("rotate")).unwrap();
        // First write: nothing to rotate.
        dir.write_json_rotating("ck.json", "ck.prev.json", &1u64)
            .unwrap();
        assert!(!dir.exists("ck.prev.json"));
        dir.write_json_rotating("ck.json", "ck.prev.json", &2u64)
            .unwrap();
        assert_eq!(dir.read_json::<u64>("ck.json").unwrap(), Some(2));
        assert_eq!(dir.read_json::<u64>("ck.prev.json").unwrap(), Some(1));
        // Corrupting the current generation falls back to the previous one.
        fs::write(dir.path().join("ck.json"), b"torn").unwrap();
        assert!(dir.load::<u64>("ck.json").unwrap().is_corrupt());
        assert_eq!(dir.read_json::<u64>("ck.prev.json").unwrap(), Some(1));
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn write_failpoints_inject_real_corruption() {
        let dir = RunDirectory::create(scratch("failpoint")).unwrap();
        let _guard = failpoint::tests_exclusive();
        failpoint::configure("registry.write.flush=torn:20@2").unwrap();
        dir.write_json("a.json", &vec![1u64; 32]).unwrap(); // hit 1: clean
        dir.write_json("b.json", &vec![2u64; 32]).unwrap(); // hit 2: torn
        failpoint::clear();
        assert_eq!(
            dir.load::<Vec<u64>>("a.json").unwrap(),
            Artifact::Valid(vec![1; 32])
        );
        assert!(dir.load::<Vec<u64>>("b.json").unwrap().is_corrupt());
        failpoint::configure("registry.write.rename=err@1").unwrap();
        let err = dir.write_json("c.json", &3u64).unwrap_err();
        failpoint::clear();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(!dir.exists("c.json"), "failed rename leaves no target");
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn registry_tracks_completion() {
        let registry = RunRegistry::open(scratch("registry")).unwrap();
        let manifest = RunManifest {
            jobs: vec!["ising(J=0.25)".to_string(), "xxz(J=1.00)".to_string()],
            seed: 7,
            profile: "quick".to_string(),
        };
        let run = registry.run("run-a").unwrap();
        run.write_manifest(&manifest).unwrap();
        run.write_json(
            &format!("{}.result.json", artifact_slug("ising(J=0.25)")),
            &1u64,
        )
        .unwrap();
        run.write_json(
            &format!("{}.checkpoint.json", artifact_slug("xxz(J=1.00)")),
            &2u64,
        )
        .unwrap();
        let runs = registry.list().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].manifest, manifest);
        assert_eq!(runs[0].complete_jobs, 1);
        assert_eq!(runs[0].checkpointed_jobs, 1);
        assert!(!runs[0].is_complete());
        fs::remove_dir_all(registry.path()).unwrap();
    }

    #[test]
    fn slugs_are_stable_and_safe() {
        assert_eq!(artifact_slug("ising(J=0.25)"), "ising-J-0.25");
        assert_eq!(artifact_slug("H2O(l=1.0)"), "H2O-l-1.0");
        assert_eq!(artifact_slug("a/b\\c d"), "a-b-c-d");
    }
}
