//! Durable run state: atomic JSON artifacts, manifests, and the run
//! registry.
//!
//! A *run directory* holds everything one suite run produces: a
//! `manifest.json` describing the configuration, one `<job>.checkpoint.json`
//! per in-flight job (replaced atomically every round), and one
//! `<job>.result.json` per finished job. Because every write is
//! tmp-file + rename, a run killed at any instant leaves only complete
//! artifacts — resuming re-reads the manifest, skips finished jobs, and
//! continues the rest from their latest round snapshot.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Configuration record of a suite run, written once at run creation and
/// verified on resume (a resume with a different seed or suite would
/// silently corrupt the run, so it is rejected instead).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Job names, in scheduling order.
    pub jobs: Vec<String>,
    /// The base seed every job derives its stream from.
    pub seed: u64,
    /// Free-form configuration descriptor (e.g. `"quick"` / `"paper"`).
    pub profile: String,
}

/// Turns an arbitrary job name into a stable, filesystem-safe artifact stem
/// (alphanumerics kept, everything else folded to `-`).
///
/// ```
/// assert_eq!(clapton_runtime::artifact_slug("ising(J=0.25)"), "ising-J-0.25");
/// ```
/// A per-writer temporary sibling name for the atomic write of artifact
/// `name`: `<name>.<pid>-<seq>.tmp`. Unique per (process, call) so racing
/// writers each rename their own complete file into place.
fn tmp_name(name: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "{name}.{}-{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

pub fn artifact_slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '.' || c == '_' {
            out.push(c);
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// One run's artifact directory with atomic JSON read/write.
#[derive(Debug, Clone)]
pub struct RunDirectory {
    root: PathBuf,
}

impl RunDirectory {
    /// Opens (creating if needed) the run directory at `root`.
    pub fn create(root: impl Into<PathBuf>) -> io::Result<RunDirectory> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(RunDirectory { root })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Whether artifact `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.root.join(name).is_file()
    }

    /// Serializes `value` to `<root>/<name>` atomically: the JSON is written
    /// to a temporary sibling and renamed into place, so readers (and
    /// resumers after a kill) only ever observe complete documents. The
    /// temporary name embeds the process id and a sequence number, so
    /// concurrent writers of the same artifact (two shard workers racing to
    /// admit a job before either holds its lease) never rename each other's
    /// half-written files away; last rename wins.
    pub fn write_json<T: Serialize + ?Sized>(&self, name: &str, value: &T) -> io::Result<()> {
        let json = serde_json::to_string_pretty(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let target = self.root.join(name);
        let tmp = self.root.join(tmp_name(name));
        fs::write(&tmp, json.as_bytes())?;
        fs::rename(&tmp, &target)
    }

    /// Writes raw text to `<root>/<name>` with the same atomic
    /// temporary-then-rename discipline as [`RunDirectory::write_json`]
    /// (used for line-oriented artifacts like `telemetry.jsonl`).
    pub fn write_text(&self, name: &str, text: &str) -> io::Result<()> {
        let target = self.root.join(name);
        let tmp = self.root.join(tmp_name(name));
        fs::write(&tmp, text.as_bytes())?;
        fs::rename(&tmp, &target)
    }

    /// Reads artifact `name` as raw text, returning `Ok(None)` when it does
    /// not exist.
    pub fn read_text(&self, name: &str) -> io::Result<Option<String>> {
        match fs::read_to_string(self.root.join(name)) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Reads artifact `name`, returning `Ok(None)` when it does not exist
    /// and an `InvalidData` error when it exists but does not parse.
    pub fn read_json<T: DeserializeOwned>(&self, name: &str) -> io::Result<Option<T>> {
        let target = self.root.join(name);
        let text = match fs::read_to_string(&target) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))
    }

    /// Deletes artifact `name` if present.
    pub fn remove(&self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.root.join(name)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Writes the run manifest.
    pub fn write_manifest(&self, manifest: &RunManifest) -> io::Result<()> {
        self.write_json("manifest.json", manifest)
    }

    /// Reads the run manifest, if the run was initialized.
    pub fn manifest(&self) -> io::Result<Option<RunManifest>> {
        self.read_json("manifest.json")
    }
}

/// Completion summary of one registered run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunInfo {
    /// Directory name of the run.
    pub name: String,
    /// The manifest it was created with.
    pub manifest: RunManifest,
    /// Jobs with a final result artifact.
    pub complete_jobs: usize,
    /// Jobs with only a checkpoint (interrupted mid-run).
    pub checkpointed_jobs: usize,
}

impl RunInfo {
    /// Whether every job of the run has a final result.
    pub fn is_complete(&self) -> bool {
        self.complete_jobs == self.manifest.jobs.len()
    }
}

/// A root directory containing one subdirectory per run — the registry the
/// `suite-runner` CLI lists and resumes from.
#[derive(Debug, Clone)]
pub struct RunRegistry {
    root: PathBuf,
}

impl RunRegistry {
    /// Opens (creating if needed) a registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<RunRegistry> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(RunRegistry { root })
    }

    /// The registry root.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Opens (creating if needed) the run directory for `run_name`.
    pub fn run(&self, run_name: &str) -> io::Result<RunDirectory> {
        RunDirectory::create(self.root.join(run_name))
    }

    /// Every run directory under the registry (initialized or not), sorted
    /// by name — the raw listing queue-style consumers (e.g. a job server
    /// re-admitting persisted work after a restart) scan, without requiring
    /// a suite manifest the way [`RunRegistry::list`] does.
    pub fn run_names(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Summarizes every initialized run under the registry, sorted by name.
    pub fn list(&self) -> io::Result<Vec<RunInfo>> {
        let mut runs = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let dir = RunDirectory::create(entry.path())?;
            let Some(manifest) = dir.manifest()? else {
                continue;
            };
            let mut complete = 0;
            let mut checkpointed = 0;
            for job in &manifest.jobs {
                let slug = artifact_slug(job);
                if dir.exists(&format!("{slug}.result.json")) {
                    complete += 1;
                } else if dir.exists(&format!("{slug}.checkpoint.json")) {
                    checkpointed += 1;
                }
            }
            runs.push(RunInfo {
                name,
                manifest,
                complete_jobs: complete,
                checkpointed_jobs: checkpointed,
            });
        }
        runs.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clapton-runtime-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn artifacts_round_trip_and_overwrite_atomically() {
        let dir = RunDirectory::create(scratch("rt")).unwrap();
        assert_eq!(dir.read_json::<Vec<u64>>("x.json").unwrap(), None);
        dir.write_json("x.json", &vec![1u64, 2, 3]).unwrap();
        assert_eq!(
            dir.read_json::<Vec<u64>>("x.json").unwrap(),
            Some(vec![1, 2, 3])
        );
        dir.write_json("x.json", &vec![9u64]).unwrap();
        assert_eq!(dir.read_json::<Vec<u64>>("x.json").unwrap(), Some(vec![9]));
        let leftover_tmp = fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"));
        assert!(!leftover_tmp, "tmp files renamed away");
        dir.remove("x.json").unwrap();
        dir.remove("x.json").unwrap(); // idempotent
        assert!(!dir.exists("x.json"));
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn corrupt_artifacts_error_instead_of_vanishing() {
        let dir = RunDirectory::create(scratch("corrupt")).unwrap();
        fs::write(dir.path().join("bad.json"), b"{not json").unwrap();
        let err = dir.read_json::<Vec<u64>>("bad.json").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(dir.path()).unwrap();
    }

    #[test]
    fn registry_tracks_completion() {
        let registry = RunRegistry::open(scratch("registry")).unwrap();
        let manifest = RunManifest {
            jobs: vec!["ising(J=0.25)".to_string(), "xxz(J=1.00)".to_string()],
            seed: 7,
            profile: "quick".to_string(),
        };
        let run = registry.run("run-a").unwrap();
        run.write_manifest(&manifest).unwrap();
        run.write_json(
            &format!("{}.result.json", artifact_slug("ising(J=0.25)")),
            &1u64,
        )
        .unwrap();
        run.write_json(
            &format!("{}.checkpoint.json", artifact_slug("xxz(J=1.00)")),
            &2u64,
        )
        .unwrap();
        let runs = registry.list().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].manifest, manifest);
        assert_eq!(runs[0].complete_jobs, 1);
        assert_eq!(runs[0].checkpointed_jobs, 1);
        assert!(!runs[0].is_complete());
        fs::remove_dir_all(registry.path()).unwrap();
    }

    #[test]
    fn slugs_are_stable_and_safe() {
        assert_eq!(artifact_slug("ising(J=0.25)"), "ising-J-0.25");
        assert_eq!(artifact_slug("H2O(l=1.0)"), "H2O-l-1.0");
        assert_eq!(artifact_slug("a/b\\c d"), "a-b-c-d");
    }
}
