//! Pool-backed population evaluation.

use crate::WorkerPool;
use clapton_eval::LossEvaluator;
use std::sync::Arc;

/// Population-parallel batch evaluation on a shared persistent
/// [`WorkerPool`] — the pool-backed successor of
/// [`clapton_eval::ParallelEvaluator`].
///
/// Where `ParallelEvaluator` spawns scoped threads per batch, this wrapper
/// submits chunk tasks to workers that already exist and are shared with
/// every other batch, GA round, and scheduler job in the process. Chunks are
/// sized so idle workers can steal meaningful work while each chunk is still
/// wide enough to amortize the wrapped evaluator's per-batch setup (e.g. the
/// prepared-backend hoist of `TransformLoss`, whose exact backend then runs
/// the bit-parallel batched back-propagation — 64 Hamiltonian terms per
/// circuit walk — inside every chunk).
///
/// Results are written into per-chunk output slots, so the batch is
/// bit-identical to sequential evaluation no matter which worker executes
/// which chunk — losses are pure functions of the genome.
#[derive(Debug, Clone)]
pub struct PooledEvaluator<E> {
    inner: E,
    pool: Arc<WorkerPool>,
    min_chunk: usize,
    /// Effective parallelism: pool workers plus the calling thread (which
    /// drains its own scope), capped at the machine's cores. Threads beyond
    /// the hardware are pure scheduling overhead, so on a saturated (or
    /// single-core) machine batches run inline and keep the wrapped
    /// evaluator's whole-batch fast path. Resolved once at construction —
    /// `available_parallelism` re-reads cgroup state on every call (~10 µs
    /// in a container), which is real money on a per-round hot path.
    effective: usize,
}

impl<E: LossEvaluator> PooledEvaluator<E> {
    /// Wraps `inner`, dispatching batches onto `pool`.
    pub fn new(inner: E, pool: Arc<WorkerPool>) -> PooledEvaluator<E> {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let effective = (pool.workers() + 1).min(cores);
        PooledEvaluator {
            inner,
            pool,
            min_chunk: 8,
            effective,
        }
    }

    /// Overrides the minimum genomes per chunk task (default 8).
    ///
    /// Each chunk is one `evaluate_population` call into the wrapped
    /// evaluator, so any per-batch setup the wrapped evaluator has not
    /// hoisted to construction time is paid per chunk, and every chunk
    /// pays fixed spawn/steal bookkeeping. Chunks below the default lose
    /// more to that than they gain in stealing granularity for realistic
    /// populations.
    pub fn with_min_chunk(mut self, min_chunk: usize) -> PooledEvaluator<E> {
        self.min_chunk = min_chunk.max(1);
        self
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The shared pool batches run on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }
}

impl<E: LossEvaluator> LossEvaluator for PooledEvaluator<E> {
    fn evaluate(&self, genome: &[u8]) -> f64 {
        self.inner.evaluate(genome)
    }

    fn evaluate_population(&self, genomes: &[Vec<u8>]) -> Vec<f64> {
        if genomes.is_empty() {
            return Vec::new();
        }
        if self.effective == 1 {
            return self.inner.evaluate_population(genomes);
        }
        // A few chunks per thread lets stealing balance uneven losses, but
        // every chunk re-enters the wrapped evaluator's batch entry point
        // and pays the spawn/steal bookkeeping — two per thread is the
        // measured sweet spot on population_batch_96 against ad-hoc scoped
        // threads (which use exactly one chunk per thread).
        let chunks = genomes
            .len()
            .div_ceil(self.min_chunk)
            .clamp(1, self.effective * 2);
        if chunks == 1 {
            return self.inner.evaluate_population(genomes);
        }
        let chunk_len = genomes.len().div_ceil(chunks);
        let mut out = vec![0.0f64; genomes.len()];
        let inner = &self.inner;
        let _batch = clapton_telemetry::span("population_batch");
        self.pool.scope(|s| {
            for (chunk, slots) in genomes.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
                s.spawn(move || {
                    let _chunk = clapton_telemetry::span("chunk");
                    slots.copy_from_slice(&inner.evaluate_population(chunk));
                });
            }
        });
        out
    }

    fn canonical_key(&self, genome: &[u8]) -> Vec<u8> {
        self.inner.canonical_key(genome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clapton_eval::FnEvaluator;

    fn toy() -> impl LossEvaluator {
        FnEvaluator::new(|g: &[u8]| {
            g.iter()
                .enumerate()
                .map(|(i, &x)| (x as f64) * ((i + 1) as f64).sqrt())
                .sum()
        })
    }

    fn population(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..9).map(|j| ((i * 5 + j) % 4) as u8).collect())
            .collect()
    }

    #[test]
    fn pooled_batch_is_bit_identical_to_sequential() {
        let base = toy();
        let pop = population(97);
        let sequential: Vec<f64> = pop.iter().map(|g| base.evaluate(g)).collect();
        for workers in [0, 1, 4] {
            let pool = Arc::new(WorkerPool::with_workers(workers));
            let pooled = PooledEvaluator::new(toy(), pool);
            assert_eq!(
                pooled.evaluate_population(&pop),
                sequential,
                "workers {workers}"
            );
        }
    }

    #[test]
    fn handles_empty_and_tiny_batches() {
        let pool = Arc::new(WorkerPool::with_workers(2));
        let pooled = PooledEvaluator::new(toy(), pool);
        assert_eq!(pooled.evaluate_population(&[]), Vec::<f64>::new());
        let one = population(1);
        assert_eq!(
            pooled.evaluate_population(&one),
            vec![pooled.evaluate(&one[0])]
        );
    }

    #[test]
    fn one_pool_serves_many_evaluators() {
        let pool = Arc::new(WorkerPool::with_workers(2));
        let a = PooledEvaluator::new(toy(), Arc::clone(&pool));
        let b = PooledEvaluator::new(toy(), pool);
        let pop = population(40);
        let expected: Vec<f64> = pop.iter().map(|g| a.inner().evaluate(g)).collect();
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(a.evaluate_population(&pop), expected));
            s.spawn(|| assert_eq!(b.evaluate_population(&pop), expected));
        });
    }
}
