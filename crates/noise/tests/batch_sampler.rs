//! Property tests for the bit-parallel batched Pauli-frame sampler:
//! fixed-seed reproducibility, statistical agreement with the exact
//! back-propagation evaluator, exact handling of shot counts not divisible
//! by 64, and >64-qubit registers.

use clapton_circuits::{Circuit, Gate};
use clapton_noise::{ExactEvaluator, FrameSampler, NoiseModel, NoisyCircuit, TermCache};
use clapton_pauli::{PauliString, PauliSum};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn noisy(c: &Circuit, m: &NoiseModel) -> NoisyCircuit {
    NoisyCircuit::from_circuit(c, m).expect("Clifford circuit")
}

/// A small entangling Clifford circuit under moderate noise.
fn entangled_fixture(n: usize) -> NoisyCircuit {
    let mut c = Circuit::new(n);
    c.push(Gate::H(0));
    for q in 0..n - 1 {
        c.push(Gate::Cx(q, q + 1));
    }
    noisy(&c, &NoiseModel::uniform(n, 5e-3, 2e-2, 2e-2))
}

/// A random Clifford-grid circuit (the generator mirrors
/// `noiseless_backprop_matches_stabilizer_state`).
fn random_circuit(n: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..15 {
        match rng.gen_range(0..4) {
            0 => c.push(Gate::H(rng.gen_range(0..n))),
            1 => c.push(Gate::S(rng.gen_range(0..n))),
            2 => c.push(Gate::Ry(rng.gen_range(0..n), std::f64::consts::FRAC_PI_2)),
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Gate::Cx(a, b));
            }
        }
    }
    c
}

proptest! {
    /// (a) A fixed seed is bit-reproducible for any shot count, including
    /// counts that do not fill the last 64-shot word.
    #[test]
    fn prop_fixed_seed_is_bit_reproducible(shots in 1usize..300, seed in 0u64..u64::MAX) {
        let nc = entangled_fixture(3);
        let sampler = FrameSampler::new(&nc);
        let term: PauliString = "ZZI".parse().unwrap();
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            sampler.expectation(&term, shots, &mut rng)
        };
        prop_assert_eq!(run().to_bits(), run().to_bits());
    }

    /// (c) The estimate averages over exactly `shots` outcomes: the
    /// numerator is an integer of the same parity as the shot count, and
    /// the mean stays in `[-1, 1]` — both fail if stray lanes of a partial
    /// word leak into the sum.
    #[test]
    fn prop_partial_words_average_exactly_shots_outcomes(
        shots in 1usize..300,
        seed in 0u64..u64::MAX,
    ) {
        let nc = entangled_fixture(3);
        let sampler = FrameSampler::new(&nc);
        let term: PauliString = "ZZI".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = sampler.expectation(&term, shots, &mut rng);
        prop_assert!((-1.0..=1.0).contains(&mean), "mean {mean}");
        let numerator = mean * shots as f64;
        prop_assert!(
            (numerator - numerator.round()).abs() < 1e-9,
            "±1 outcomes must sum to an integer, got {numerator}"
        );
        let parity_matches = (numerator.round() as i64).rem_euclid(2) == (shots as i64).rem_euclid(2);
        prop_assert!(parity_matches, "sum of {shots} ±1 outcomes has wrong parity");
    }
}

/// (c) continued: with noiseless gates and no readout error every outcome
/// is the deterministic stabilizer value, so any shot count — aligned or
/// not — must return exactly ±1.
#[test]
fn deterministic_outcomes_are_exact_for_any_shot_count() {
    let mut c = Circuit::new(2);
    c.push(Gate::X(0));
    let nc = noisy(&c, &NoiseModel::noiseless(2));
    let sampler = FrameSampler::new(&nc);
    let z: PauliString = "ZI".parse().unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for shots in [1, 2, 63, 64, 65, 100, 127, 128, 129, 1000] {
        assert_eq!(
            sampler.expectation(&z, shots, &mut rng),
            -1.0,
            "shots {shots}"
        );
    }
}

/// (b) Batched means converge to the exact back-propagated noisy
/// expectation on random Clifford circuits under gate and readout noise.
#[test]
fn batched_means_match_exact_on_random_clifford_circuits() {
    let mut rng = StdRng::seed_from_u64(71);
    for round in 0..8 {
        let n = rng.gen_range(2..6);
        let c = random_circuit(n, &mut rng);
        let model = NoiseModel::uniform(n, 5e-3, 2e-2, 2e-2);
        let nc = noisy(&c, &model);
        let exact = ExactEvaluator::new(&nc);
        let sampler = FrameSampler::new(&nc);
        for _ in 0..4 {
            let term = PauliString::random_non_identity(n, &mut rng);
            let e = exact.expectation(&term);
            let s = sampler.expectation(&term, 20_000, &mut rng);
            // 20k shots ⇒ σ ≤ 1/√20000 ≈ 0.007; 0.04 is > 5σ.
            assert!(
                (s - e).abs() < 0.04,
                "round {round} circuit {c} term {term}: sampled {s} vs exact {e}"
            );
        }
    }
}

/// The scalar reference path samples the same distribution as the batched
/// kernel: both land on the exact value within shot noise.
#[test]
fn scalar_reference_and_batched_agree_statistically() {
    let nc = entangled_fixture(3);
    let sampler = FrameSampler::new(&nc);
    let exact = ExactEvaluator::new(&nc);
    let mut rng = StdRng::seed_from_u64(17);
    for term in ["ZZI", "IZZ", "XXX"] {
        let term: PauliString = term.parse().unwrap();
        let e = exact.expectation(&term);
        let batched = sampler.expectation(&term, 20_000, &mut rng);
        let scalar = sampler.expectation_scalar(&term, 20_000, &mut rng);
        assert!((batched - e).abs() < 0.04, "batched {batched} vs exact {e}");
        assert!((scalar - e).abs() < 0.04, "scalar {scalar} vs exact {e}");
    }
}

/// Registers beyond one storage word: the batch kernel indexes per-qubit
/// planes, so a 70-qubit GHZ chain must work and converge like any other.
#[test]
fn batched_sampler_handles_more_than_64_qubits() {
    let n = 70;
    let mut c = Circuit::new(n);
    c.push(Gate::H(0));
    for q in 0..n - 1 {
        c.push(Gate::Cx(q, q + 1));
    }
    // Noiseless first: deterministic stabilizer outcomes, exact ±1.
    let clean = noisy(&c, &NoiseModel::noiseless(n));
    let mut term = PauliString::identity(n);
    term.set(0, clapton_pauli::Pauli::Z);
    term.set(n - 1, clapton_pauli::Pauli::Z);
    let mut rng = StdRng::seed_from_u64(5);
    assert_eq!(
        FrameSampler::new(&clean).expectation(&term, 100, &mut rng),
        1.0
    );
    // Under noise, the sampled mean tracks the exact damped value; the
    // support straddles the 64-bit word boundary of the term's storage.
    let model = NoiseModel::uniform(n, 1e-3, 5e-3, 1e-2);
    let nc = noisy(&c, &model);
    let e = ExactEvaluator::new(&nc).expectation(&term);
    let s = FrameSampler::new(&nc).expectation(&term, 20_000, &mut rng);
    assert!((s - e).abs() < 0.04, "sampled {s} vs exact {e}");
}

/// `energy_cached` replays `energy` bit-for-bit — cache hits must consume
/// no randomness — while reusing one preparation per distinct term.
#[test]
fn cached_energy_is_bit_identical_and_reuses_preparation() {
    let nc = entangled_fixture(3);
    let sampler = FrameSampler::new(&nc);
    let h = PauliSum::from_terms(
        3,
        vec![
            (1.0, "ZZI".parse().unwrap()),
            (-0.5, "IZZ".parse().unwrap()),
            (0.25, "XXX".parse().unwrap()),
        ],
    );
    let fresh = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        sampler.energy(&h, 256, &mut rng)
    };
    let cache = TermCache::new();
    for seed in [1, 2, 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        let cached = sampler.energy_cached(&h, 256, &mut rng, &cache);
        assert_eq!(cached.to_bits(), fresh(seed).to_bits(), "seed {seed}");
    }
    assert_eq!(
        cache.len(),
        h.num_terms(),
        "one preparation per distinct term"
    );
}

/// A cache is pinned to one circuit: reusing it with another circuit must
/// fail loudly instead of silently serving the wrong preparations.
#[test]
#[should_panic(expected = "pinned to a different circuit")]
fn term_cache_rejects_a_different_circuit() {
    let a = entangled_fixture(3);
    let mut c = Circuit::new(3);
    c.push(Gate::X(0));
    let b = noisy(&c, &NoiseModel::noiseless(3));
    let cache = TermCache::new();
    let term: PauliString = "ZZI".parse().unwrap();
    cache.prepared(&FrameSampler::new(&a), &term);
    cache.prepared(&FrameSampler::new(&b), &term);
}

/// The circuit fingerprint must distinguish gate kinds, not just qubit
/// indices — an `H(0)` cache offered an `S(0)` circuit must still panic.
#[test]
#[should_panic(expected = "pinned to a different circuit")]
fn term_cache_rejects_same_shape_different_gates() {
    let model = NoiseModel::noiseless(1);
    let build = |g: Gate| {
        let mut c = Circuit::new(1);
        c.push(g);
        noisy(&c, &model)
    };
    let (a, b) = (build(Gate::H(0)), build(Gate::S(0)));
    let cache = TermCache::new();
    let term: PauliString = "Z".parse().unwrap();
    cache.prepared(&FrameSampler::new(&a), &term);
    cache.prepared(&FrameSampler::new(&b), &term);
}

/// A TermPrep carries its circuit fingerprint: handing it to a sampler
/// over a different circuit must fail loudly.
#[test]
#[should_panic(expected = "built against a different circuit")]
fn expectation_prepared_rejects_foreign_prep() {
    let a = entangled_fixture(3);
    let mut c = Circuit::new(3);
    c.push(Gate::S(0));
    let b = noisy(&c, &NoiseModel::noiseless(3));
    let term: PauliString = "ZZI".parse().unwrap();
    let prep = FrameSampler::new(&a).prepare(&term);
    let mut rng = StdRng::seed_from_u64(2);
    FrameSampler::new(&b).expectation_prepared(&prep, 64, &mut rng);
}
