//! Differential tests for the bit-parallel batched exact back-propagation:
//! batch-vs-scalar **bit-identity** on random noisy Clifford circuits,
//! Hamiltonians larger than one 64-term word, >64-qubit registers, and the
//! noiseless path.

use clapton_circuits::{Circuit, Gate};
use clapton_noise::{ExactEvaluator, NoiseModel, NoisyCircuit};
use clapton_pauli::{Pauli, PauliString, PauliSum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn noisy(c: &Circuit, m: &NoiseModel) -> NoisyCircuit {
    NoisyCircuit::from_circuit(c, m).expect("Clifford circuit")
}

/// A random Clifford-grid circuit (the generator mirrors the sampled-path
/// suite in `batch_sampler.rs`).
fn random_circuit(n: usize, len: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..len {
        match rng.gen_range(0..5) {
            0 => c.push(Gate::H(rng.gen_range(0..n))),
            1 => c.push(Gate::S(rng.gen_range(0..n))),
            2 => c.push(Gate::X(rng.gen_range(0..n))),
            3 => c.push(Gate::Ry(rng.gen_range(0..n), std::f64::consts::FRAC_PI_2)),
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Gate::Cx(a, b));
            }
        }
    }
    c
}

/// A random Hamiltonian of `m` terms with random coefficients; identity
/// terms are allowed (they short-circuit to expectation 1 on both paths).
fn random_hamiltonian(n: usize, m: usize, rng: &mut StdRng) -> PauliSum {
    PauliSum::from_terms(
        n,
        (0..m).map(|_| (rng.gen_range(-2.0..2.0), PauliString::random(n, rng))),
    )
}

/// A random noise model with independently random depolarizing and readout
/// rates (including occasional zero rates, which drop the channel entirely).
fn random_model(n: usize, rng: &mut StdRng) -> NoiseModel {
    let p1 = [0.0, 1e-4, 3e-3, 2e-2][rng.gen_range(0..4)];
    let p2 = [0.0, 1e-3, 8e-3, 5e-2][rng.gen_range(0..4)];
    let ro = [0.0, 1e-3, 1e-2, 8e-2][rng.gen_range(0..4)];
    NoiseModel::uniform(n, p1, p2, ro)
}

#[test]
fn batched_energy_is_bit_identical_on_random_noisy_circuits() {
    let mut rng = StdRng::seed_from_u64(2024);
    for round in 0..40 {
        let n = rng.gen_range(2..9);
        let c = random_circuit(n, rng.gen_range(5..40), &mut rng);
        let nc = noisy(&c, &random_model(n, &mut rng));
        let eval = ExactEvaluator::new(&nc);
        let m = rng.gen_range(1..90);
        let h = random_hamiltonian(n, m, &mut rng);
        let scalar = eval.energy_scalar(&h);
        let batched = eval.energy_batched(&h);
        assert_eq!(
            batched.to_bits(),
            scalar.to_bits(),
            "round {round}: batched {batched} vs scalar {scalar} (n {n}, m {m})"
        );
        assert_eq!(eval.energy(&h).to_bits(), scalar.to_bits(), "dispatch");
    }
}

#[test]
fn noiseless_batched_energy_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(4096);
    for _ in 0..20 {
        let n = rng.gen_range(2..8);
        let c = random_circuit(n, 25, &mut rng);
        // Noise present in the model, but the noiseless path ignores it.
        let nc = noisy(&c, &random_model(n, &mut rng));
        let eval = ExactEvaluator::new(&nc);
        let h = random_hamiltonian(n, rng.gen_range(1..80), &mut rng);
        let scalar = eval.noiseless_energy_scalar(&h);
        assert_eq!(
            eval.noiseless_energy_batched(&h).to_bits(),
            scalar.to_bits()
        );
        assert_eq!(eval.noiseless_energy(&h).to_bits(), scalar.to_bits());
    }
}

/// M > 64: the second `TermBatch` word is only partially filled, and the
/// accumulation across the word boundary must stay in term order.
#[test]
fn partial_last_word_accumulates_in_term_order() {
    let mut rng = StdRng::seed_from_u64(70);
    let n = 6;
    let c = random_circuit(n, 30, &mut rng);
    let nc = noisy(&c, &NoiseModel::uniform(n, 2e-3, 1e-2, 2e-2));
    let eval = ExactEvaluator::new(&nc);
    for m in [63, 64, 65, 70, 128, 129] {
        let h = random_hamiltonian(n, m, &mut rng);
        assert_eq!(
            eval.energy_batched(&h).to_bits(),
            eval.energy_scalar(&h).to_bits(),
            "m = {m}"
        );
    }
}

/// Registers beyond one `PauliString` storage word: per-qubit planes index
/// qubits directly, and lane packing/unpacking must handle supports that
/// straddle the 64-qubit word boundary.
#[test]
fn batched_exact_handles_more_than_64_qubits() {
    let n = 70;
    let mut c = Circuit::new(n);
    c.push(Gate::H(0));
    for q in 0..n - 1 {
        c.push(Gate::Cx(q, q + 1));
    }
    let nc = noisy(&c, &NoiseModel::uniform(n, 1e-3, 5e-3, 1e-2));
    let eval = ExactEvaluator::new(&nc);
    // Terms supported across the word boundary, plus random ones.
    let mut rng = StdRng::seed_from_u64(7);
    let mut h = PauliSum::new(n);
    let mut boundary = PauliString::identity(n);
    boundary.set(0, Pauli::Z);
    boundary.set(63, Pauli::Z);
    boundary.set(64, Pauli::Z);
    boundary.set(n - 1, Pauli::Z);
    h.push(1.5, boundary);
    for _ in 0..66 {
        h.push(rng.gen_range(-1.0..1.0), PauliString::random(n, &mut rng));
    }
    assert_eq!(
        eval.energy_batched(&h).to_bits(),
        eval.energy_scalar(&h).to_bits()
    );
    assert_eq!(
        eval.noiseless_energy_batched(&h).to_bits(),
        eval.noiseless_energy_scalar(&h).to_bits()
    );
}

/// Identity terms and basis-prep-heavy (X/Y-rich) terms share one batch:
/// the per-lane init (prep conjugation + readout factors) must agree with
/// the scalar walk lane by lane, not just in aggregate.
#[test]
fn per_term_expectations_match_through_the_batch() {
    let mut rng = StdRng::seed_from_u64(55);
    let n = 5;
    let c = random_circuit(n, 20, &mut rng);
    let nc = noisy(&c, &NoiseModel::uniform(n, 3e-3, 1.2e-2, 2.5e-2));
    let eval = ExactEvaluator::new(&nc);
    let mut terms: Vec<(f64, PauliString)> = vec![(0.5, PauliString::identity(n))];
    for _ in 0..70 {
        terms.push((1.0, PauliString::random(n, &mut rng)));
    }
    // Scoring each term alone through the batched path isolates its lane.
    for (c0, p) in &terms {
        let single = PauliSum::from_terms(n, vec![(*c0, p.clone())]);
        assert_eq!(
            eval.energy_batched(&single).to_bits(),
            eval.energy_scalar(&single).to_bits(),
            "term {p}"
        );
    }
    let h = PauliSum::from_terms(n, terms);
    assert_eq!(
        eval.energy_batched(&h).to_bits(),
        eval.energy_scalar(&h).to_bits()
    );
}
