//! Noisy expectation values of Pauli terms: exact back-propagation and
//! Pauli-frame Monte Carlo.

use crate::{NoisyCircuit, NoisyOp};
use clapton_pauli::{Pauli, PauliString, PauliSum};
use rand::Rng;

/// Exact noisy expectation values via Heisenberg back-propagation.
///
/// For a Clifford circuit interleaved with stochastic Pauli channels, pulling
/// the measured observable backwards through the circuit turns every channel
/// into a scalar damping factor:
///
/// * single-qubit depolarizing of strength `p` on a supported qubit:
///   `1 - 4p/3`,
/// * two-qubit depolarizing of strength `p` touching the support:
///   `1 - 16p/15`,
/// * readout flip `p_k` on a measured qubit: `1 - 2p_k`,
///
/// so `⟨P⟩_noisy = (Π factors) · ⟨0|C†PC|0⟩` — exact, deterministic, one pass
/// per term. This is a strict improvement over the paper's shot sampling
/// (stim) for the same noise semantics; see [`FrameSampler`] for the faithful
/// sampled variant whose mean converges to these values.
///
/// # Example
///
/// ```
/// use clapton_circuits::{Circuit, Gate};
/// use clapton_noise::{ExactEvaluator, NoiseModel, NoisyCircuit};
///
/// // X gate with depolarizing p, then measure Z with readout error r:
/// // ⟨Z⟩ = -(1 - 4p/3)(1 - 2r).
/// let mut c = Circuit::new(1);
/// c.push(Gate::X(0));
/// let mut model = NoiseModel::uniform(1, 3e-3, 0.0, 1e-2);
/// let noisy = NoisyCircuit::from_circuit(&c, &model)?;
/// let eval = ExactEvaluator::new(&noisy);
/// let z = "Z".parse().unwrap();
/// let expected = -(1.0 - 4.0 * 3e-3 / 3.0) * (1.0 - 2.0 * 1e-2);
/// assert!((eval.expectation(&z) - expected).abs() < 1e-12);
/// # Ok::<(), clapton_noise::NotCliffordError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExactEvaluator<'a> {
    circuit: &'a NoisyCircuit,
}

impl<'a> ExactEvaluator<'a> {
    /// Wraps a noisy circuit.
    pub fn new(circuit: &'a NoisyCircuit) -> ExactEvaluator<'a> {
        ExactEvaluator { circuit }
    }

    /// The exact noisy expectation of one Pauli term, including measurement
    /// basis-prep gate noise and readout error.
    pub fn expectation(&self, term: &PauliString) -> f64 {
        if term.is_identity() {
            return 1.0;
        }
        self.back_propagate(term, true)
    }

    /// The noiseless expectation `⟨0|C†PC|0⟩` of the same circuit (all
    /// damping factors dropped) — the CAFQA-style value.
    pub fn noiseless_expectation(&self, term: &PauliString) -> f64 {
        if term.is_identity() {
            return 1.0;
        }
        self.back_propagate(term, false)
    }

    /// Noisy energy of a full Hamiltonian: `Σ_i c_i ⟨P_i⟩_noisy` (the `LN`
    /// building block, Eq. 9).
    pub fn energy(&self, hamiltonian: &PauliSum) -> f64 {
        hamiltonian
            .iter()
            .map(|(c, p)| c * self.expectation(p))
            .sum()
    }

    /// Noiseless energy of a full Hamiltonian.
    pub fn noiseless_energy(&self, hamiltonian: &PauliSum) -> f64 {
        hamiltonian
            .iter()
            .map(|(c, p)| c * self.noiseless_expectation(p))
            .sum()
    }

    fn back_propagate(&self, term: &PauliString, with_noise: bool) -> f64 {
        let n = self.circuit.num_qubits();
        let mut factor = 1.0;
        // Measured observable: the Z string on the support (basis prep maps
        // the term there).
        let mut obs = PauliString::identity(n);
        for q in term.support() {
            obs.set(q, Pauli::Z);
            if with_noise {
                factor *= 1.0 - 2.0 * self.circuit.readout(q);
            }
        }
        let mut sign = 1.0;
        let prep = self.circuit.basis_prep_ops(term);
        for op in prep.iter().rev().chain(self.circuit.ops().iter().rev()) {
            match *op {
                NoisyOp::Clifford(g) => {
                    // O ← g† O g.
                    if g.inverse().conjugate(&mut obs) {
                        sign = -sign;
                    }
                }
                NoisyOp::Depol1(q, p) => {
                    if with_noise && obs.acts_on(q) {
                        factor *= 1.0 - 4.0 * p / 3.0;
                    }
                }
                NoisyOp::Depol2(a, b, p) => {
                    if with_noise && (obs.acts_on(a) || obs.acts_on(b)) {
                        factor *= 1.0 - 16.0 * p / 15.0;
                    }
                }
            }
        }
        if !obs.is_z_type() {
            return 0.0;
        }
        sign * factor
    }
}

/// Pauli-frame Monte Carlo sampler — the faithful stim-style estimator the
/// paper used for `LN`.
///
/// Per shot, Pauli errors are sampled at each channel and propagated forward
/// as a frame; the measured outcome of the (stabilizer) observable is its
/// deterministic noiseless value (`±1`, or a fair coin when the noiseless
/// expectation vanishes) times the frame's commutation sign and the sampled
/// readout flips.
///
/// # Example
///
/// ```
/// use clapton_circuits::{Circuit, Gate};
/// use clapton_noise::{ExactEvaluator, FrameSampler, NoiseModel, NoisyCircuit};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// let model = NoiseModel::uniform(2, 2e-3, 1e-2, 1e-2);
/// let noisy = NoisyCircuit::from_circuit(&c, &model)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let zz = "ZZ".parse().unwrap();
/// let sampled = FrameSampler::new(&noisy).expectation(&zz, 20_000, &mut rng);
/// let exact = ExactEvaluator::new(&noisy).expectation(&zz);
/// assert!((sampled - exact).abs() < 0.03);
/// # Ok::<(), clapton_noise::NotCliffordError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameSampler<'a> {
    circuit: &'a NoisyCircuit,
}

impl<'a> FrameSampler<'a> {
    /// Wraps a noisy circuit.
    pub fn new(circuit: &'a NoisyCircuit) -> FrameSampler<'a> {
        FrameSampler { circuit }
    }

    /// Estimates the noisy expectation of one term from `shots` samples.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn expectation<R: Rng + ?Sized>(
        &self,
        term: &PauliString,
        shots: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(shots > 0, "need at least one shot");
        if term.is_identity() {
            return 1.0;
        }
        let n = self.circuit.num_qubits();
        let noiseless = ExactEvaluator::new(self.circuit).noiseless_expectation(term);
        // Measured observable after basis prep: Z on the support.
        let mut z_obs = PauliString::identity(n);
        let support: Vec<usize> = term.support().collect();
        for &q in &support {
            z_obs.set(q, Pauli::Z);
        }
        let prep = self.circuit.basis_prep_ops(term);
        let mut acc: i64 = 0;
        for _ in 0..shots {
            let mut frame = PauliString::identity(n);
            for op in self.circuit.ops().iter().chain(prep.iter()) {
                match *op {
                    NoisyOp::Clifford(g) => {
                        g.conjugate(&mut frame);
                    }
                    NoisyOp::Depol1(q, p) => {
                        if rng.gen::<f64>() < p {
                            let e = [Pauli::X, Pauli::Y, Pauli::Z][rng.gen_range(0..3)];
                            mul_pauli_into(&mut frame, q, e);
                        }
                    }
                    NoisyOp::Depol2(a, b, p) => {
                        if rng.gen::<f64>() < p {
                            let k = rng.gen_range(1..16u8);
                            let (ka, kb) = (k & 3, k >> 2);
                            if ka != 0 {
                                mul_pauli_into(&mut frame, a, index_pauli(ka));
                            }
                            if kb != 0 {
                                mul_pauli_into(&mut frame, b, index_pauli(kb));
                            }
                        }
                    }
                }
            }
            // Stabilizer measurement outcome: deterministic noiseless value,
            // or a fair coin when the expectation vanishes.
            let base: i64 = if noiseless > 0.5 {
                1
            } else if noiseless < -0.5 {
                -1
            } else if rng.gen::<bool>() {
                1
            } else {
                -1
            };
            let mut outcome = if frame.commutes_with(&z_obs) {
                base
            } else {
                -base
            };
            for &q in &support {
                if rng.gen::<f64>() < self.circuit.readout(q) {
                    outcome = -outcome;
                }
            }
            acc += outcome;
        }
        acc as f64 / shots as f64
    }

    /// Estimates the noisy energy of a Hamiltonian with `shots` per term.
    pub fn energy<R: Rng + ?Sized>(
        &self,
        hamiltonian: &PauliSum,
        shots: usize,
        rng: &mut R,
    ) -> f64 {
        hamiltonian
            .iter()
            .map(|(c, p)| c * self.expectation(p, shots, rng))
            .sum()
    }
}

/// Multiplies the single-qubit Pauli `e` into position `q` of `frame`
/// (phases irrelevant for error frames).
fn mul_pauli_into(frame: &mut PauliString, q: usize, e: Pauli) {
    let (_, prod) = frame.get(q).mul(e);
    frame.set(q, prod);
}

/// Decodes a 2-bit index into a Pauli (`1 → X`, `2 → Y`, `3 → Z`).
fn index_pauli(k: u8) -> Pauli {
    match k {
        1 => Pauli::X,
        2 => Pauli::Y,
        3 => Pauli::Z,
        _ => unreachable!("index 0 is identity"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseModel;
    use clapton_circuits::{Circuit, Gate};
    use clapton_stabilizer::StabilizerState;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    fn noisy(c: &Circuit, m: &NoiseModel) -> NoisyCircuit {
        NoisyCircuit::from_circuit(c, m).unwrap()
    }

    #[test]
    fn noiseless_identity_circuit() {
        let c = Circuit::new(2);
        let nc = noisy(&c, &NoiseModel::noiseless(2));
        let eval = ExactEvaluator::new(&nc);
        assert_eq!(eval.expectation(&ps("ZI")), 1.0);
        assert_eq!(eval.expectation(&ps("XI")), 0.0);
        assert_eq!(eval.expectation(&ps("II")), 1.0);
    }

    #[test]
    fn depolarizing_damps_z_after_x_gate() {
        let p = 3e-3;
        let r = 1e-2;
        let mut c = Circuit::new(1);
        c.push(Gate::X(0));
        let model = NoiseModel::uniform(1, p, 0.0, r);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        let expected = -(1.0 - 4.0 * p / 3.0) * (1.0 - 2.0 * r);
        assert!((eval.expectation(&ps("Z")) - expected).abs() < 1e-14);
        // Noiseless variant ignores the damping.
        assert_eq!(eval.noiseless_expectation(&ps("Z")), -1.0);
    }

    #[test]
    fn two_qubit_depolarizing_factor() {
        let p2 = 1e-2;
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        let model = NoiseModel::uniform(2, 0.0, p2, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        // ⟨Z0⟩ through one CX with 2q depolarizing: factor 1 - 16p/15.
        let expected = 1.0 - 16.0 * p2 / 15.0;
        assert!((eval.expectation(&ps("ZI")) - expected).abs() < 1e-14);
        assert!((eval.expectation(&ps("ZZ")) - expected).abs() < 1e-14);
    }

    #[test]
    fn x_basis_measurement_includes_prep_noise() {
        // |+⟩ = H|0⟩ measured in X basis: prep H carries gate noise, and the
        // circuit's H also carries noise → ⟨X⟩ = (1-4p/3)² (no readout err).
        let p = 2e-3;
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        let model = NoiseModel::uniform(1, p, 0.0, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        let expected = (1.0 - 4.0 * p / 3.0) * (1.0 - 4.0 * p / 3.0);
        assert!((eval.expectation(&ps("X")) - expected).abs() < 1e-14);
    }

    #[test]
    fn y_basis_prep_has_two_noisy_gates() {
        // ⟨Y⟩ on √X|0⟩ = -1; prep is S†,H → two extra noise slots plus the
        // circuit's own gate slot: factor (1-4p/3)³.
        let p = 1e-3;
        let mut c = Circuit::new(1);
        c.push(Gate::Ry(0, 0.0)); // identity slot, still noisy
        let model = NoiseModel::uniform(1, p, 0.0, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        let f = 1.0 - 4.0 * p / 3.0;
        // Term Y on |0⟩ is traceless → 0 regardless of damping.
        assert_eq!(eval.expectation(&ps("Y")), 0.0);
        // Term Z: no basis prep, one identity-slot noise. Z supported.
        assert!((eval.expectation(&ps("Z")) - f).abs() < 1e-14);
    }

    #[test]
    fn unsupported_qubits_are_not_damped() {
        // Noise on qubit 1 must not damp an observable supported on qubit 0.
        let mut c = Circuit::new(2);
        c.push(Gate::H(1));
        let model = NoiseModel::uniform(2, 5e-2, 0.0, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        assert_eq!(eval.expectation(&ps("ZI")), 1.0);
    }

    #[test]
    fn noiseless_backprop_matches_stabilizer_state() {
        let mut rng = StdRng::seed_from_u64(71);
        use rand::Rng;
        for _ in 0..20 {
            let n = rng.gen_range(2..6);
            let mut c = Circuit::new(n);
            for _ in 0..15 {
                match rng.gen_range(0..4) {
                    0 => c.push(Gate::H(rng.gen_range(0..n))),
                    1 => c.push(Gate::S(rng.gen_range(0..n))),
                    2 => c.push(Gate::Ry(rng.gen_range(0..n), std::f64::consts::FRAC_PI_2)),
                    _ => {
                        let a = rng.gen_range(0..n);
                        let mut b = rng.gen_range(0..n);
                        while b == a {
                            b = rng.gen_range(0..n);
                        }
                        c.push(Gate::Cx(a, b));
                    }
                }
            }
            let nc = noisy(&c, &NoiseModel::noiseless(n));
            let eval = ExactEvaluator::new(&nc);
            let mut st = StabilizerState::new(n);
            st.apply_all(&c.to_clifford().unwrap());
            for _ in 0..10 {
                let p = PauliString::random(n, &mut rng);
                assert_eq!(
                    eval.noiseless_expectation(&p),
                    st.expectation(&p),
                    "circuit {c} term {p}"
                );
            }
        }
    }

    #[test]
    fn energy_sums_terms() {
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        let nc = noisy(&c, &NoiseModel::noiseless(2));
        let eval = ExactEvaluator::new(&nc);
        let h = PauliSum::from_terms(2, vec![(1.0, ps("ZI")), (2.0, ps("IZ")), (0.5, ps("II"))]);
        assert_eq!(eval.energy(&h), -1.0 + 2.0 + 0.5);
    }

    #[test]
    fn sampler_converges_to_exact_single_qubit() {
        let p = 5e-2;
        let r = 3e-2;
        let mut c = Circuit::new(1);
        c.push(Gate::X(0));
        let model = NoiseModel::uniform(1, p, 0.0, r);
        let nc = noisy(&c, &model);
        let exact = ExactEvaluator::new(&nc).expectation(&ps("Z"));
        let mut rng = StdRng::seed_from_u64(99);
        let sampled = FrameSampler::new(&nc).expectation(&ps("Z"), 40_000, &mut rng);
        assert!(
            (sampled - exact).abs() < 0.02,
            "sampled {sampled} vs exact {exact}"
        );
    }

    #[test]
    fn sampler_converges_to_exact_entangled() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        let model = NoiseModel::uniform(3, 1e-2, 4e-2, 2e-2);
        let nc = noisy(&c, &model);
        let mut rng = StdRng::seed_from_u64(123);
        for term in ["ZZI", "IZZ", "XXX", "ZIZ"] {
            let exact = ExactEvaluator::new(&nc).expectation(&ps(term));
            let sampled = FrameSampler::new(&nc).expectation(&ps(term), 40_000, &mut rng);
            assert!(
                (sampled - exact).abs() < 0.03,
                "term {term}: sampled {sampled} vs exact {exact}"
            );
        }
    }

    #[test]
    fn two_qubit_channel_damps_single_qubit_observables_on_either_leg() {
        // A 2q depolarizing channel damps any observable overlapping the
        // pair, including observables supported on only one of the qubits.
        let p2 = 2e-2;
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(1, 2));
        let model = NoiseModel::uniform(3, 0.0, p2, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        let f = 1.0 - 16.0 * p2 / 15.0;
        assert!((eval.expectation(&ps("IZI")) - f).abs() < 1e-14);
        assert!((eval.expectation(&ps("IIZ")) - f).abs() < 1e-14);
        // Qubit 0 is untouched by the channel.
        assert_eq!(eval.expectation(&ps("ZII")), 1.0);
    }

    #[test]
    fn damping_factors_compose_multiplicatively() {
        // Two sequential X gates on the same qubit: two 1q channels, each
        // damping ⟨Z⟩ by (1-4p/3); the X flips cancel.
        let p = 1e-2;
        let mut c = Circuit::new(1);
        c.push(Gate::X(0));
        c.push(Gate::X(0));
        let model = NoiseModel::uniform(1, p, 0.0, 0.0);
        let nc = noisy(&c, &model);
        let f = 1.0 - 4.0 * p / 3.0;
        let eval = ExactEvaluator::new(&nc);
        assert!((eval.expectation(&ps("Z")) - f * f).abs() < 1e-14);
    }

    #[test]
    fn identity_term_is_never_damped() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        let model = NoiseModel::uniform(2, 0.5, 0.5, 0.5);
        let nc = noisy(&c, &model);
        assert_eq!(ExactEvaluator::new(&nc).expectation(&ps("II")), 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            FrameSampler::new(&nc).expectation(&ps("II"), 10, &mut rng),
            1.0
        );
    }

    #[test]
    fn full_strength_readout_error_inverts_sign() {
        // readout p = 1 flips every bit deterministically: ⟨Z⟩ on |0⟩ = -1.
        let c = Circuit::new(1);
        let model = NoiseModel::uniform(1, 0.0, 0.0, 1.0);
        let nc = noisy(&c, &model);
        assert_eq!(ExactEvaluator::new(&nc).expectation(&ps("Z")), -1.0);
    }

    #[test]
    fn sampler_zero_expectation_stays_near_zero() {
        let c = Circuit::new(1);
        let nc = noisy(&c, &NoiseModel::uniform(1, 1e-2, 0.0, 1e-2));
        let mut rng = StdRng::seed_from_u64(7);
        let sampled = FrameSampler::new(&nc).expectation(&ps("X"), 40_000, &mut rng);
        assert!(sampled.abs() < 0.02, "sampled {sampled}");
    }
}
