//! Noisy expectation values of Pauli terms: exact back-propagation and
//! Pauli-frame Monte Carlo.

use crate::{NoisyCircuit, NoisyOp};
use clapton_pauli::{
    uniform_pauli_pair_planes, uniform_pauli_planes, BernoulliWords, FrameBatch, Pauli,
    PauliString, PauliSum, TermBatch,
};
use clapton_telemetry::metrics::{registry, Counter};
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Process-wide kernel throughput counters for the exact and sampled
/// energy paths.
struct KernelMetrics {
    exact_walks: Arc<Counter>,
    exact_terms: Arc<Counter>,
    sampled_frames: Arc<Counter>,
    sampled_terms: Arc<Counter>,
}

fn kernel_metrics() -> &'static KernelMetrics {
    static METRICS: OnceLock<KernelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| KernelMetrics {
        exact_walks: registry().counter(
            "clapton_exact_walks_total",
            "Reverse circuit walks by the exact evaluator (batched: one per 64 terms)",
        ),
        exact_terms: registry().counter(
            "clapton_exact_terms_total",
            "Hamiltonian terms evaluated by the exact evaluator",
        ),
        sampled_frames: registry().counter(
            "clapton_sampled_frames_total",
            "Pauli frames (shots) drawn by the frame sampler",
        ),
        sampled_terms: registry().counter(
            "clapton_sampled_terms_total",
            "Hamiltonian terms estimated by the frame sampler",
        ),
    })
}

/// Exact noisy expectation values via Heisenberg back-propagation.
///
/// For a Clifford circuit interleaved with stochastic Pauli channels, pulling
/// the measured observable backwards through the circuit turns every channel
/// into a scalar damping factor:
///
/// * single-qubit depolarizing of strength `p` on a supported qubit:
///   `1 - 4p/3`,
/// * two-qubit depolarizing of strength `p` touching the support:
///   `1 - 16p/15`,
/// * readout flip `p_k` on a measured qubit: `1 - 2p_k`,
///
/// so `⟨P⟩_noisy = (Π factors) · ⟨0|C†PC|0⟩` — exact, deterministic, one pass
/// per term. This is a strict improvement over the paper's shot sampling
/// (stim) for the same noise semantics; see [`FrameSampler`] for the faithful
/// sampled variant whose mean converges to these values.
///
/// Whole-Hamiltonian energies are **bit-parallel**: [`ExactEvaluator::energy`]
/// back-propagates 64 terms per circuit walk through a signed
/// [`TermBatch`] (the term-major sibling of the sampler's [`FrameBatch`]),
/// falling back to the scalar walk below
/// [`ExactEvaluator::BATCH_MIN_TERMS`] terms. Batched and scalar energies
/// are bit-identical; [`ExactEvaluator::energy_scalar`] keeps the
/// term-at-a-time reference.
///
/// # Example
///
/// ```
/// use clapton_circuits::{Circuit, Gate};
/// use clapton_noise::{ExactEvaluator, NoiseModel, NoisyCircuit};
///
/// // X gate with depolarizing p, then measure Z with readout error r:
/// // ⟨Z⟩ = -(1 - 4p/3)(1 - 2r).
/// let mut c = Circuit::new(1);
/// c.push(Gate::X(0));
/// let mut model = NoiseModel::uniform(1, 3e-3, 0.0, 1e-2);
/// let noisy = NoisyCircuit::from_circuit(&c, &model)?;
/// let eval = ExactEvaluator::new(&noisy);
/// let z = "Z".parse().unwrap();
/// let expected = -(1.0 - 4.0 * 3e-3 / 3.0) * (1.0 - 2.0 * 1e-2);
/// assert!((eval.expectation(&z) - expected).abs() < 1e-12);
/// # Ok::<(), clapton_noise::NotCliffordError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExactEvaluator<'a> {
    circuit: &'a NoisyCircuit,
}

impl<'a> ExactEvaluator<'a> {
    /// Wraps a noisy circuit.
    pub fn new(circuit: &'a NoisyCircuit) -> ExactEvaluator<'a> {
        ExactEvaluator { circuit }
    }

    /// The exact noisy expectation of one Pauli term, including measurement
    /// basis-prep gate noise and readout error.
    pub fn expectation(&self, term: &PauliString) -> f64 {
        if term.is_identity() {
            return 1.0;
        }
        self.back_propagate(term, true)
    }

    /// The noiseless expectation `⟨0|C†PC|0⟩` of the same circuit (all
    /// damping factors dropped) — the CAFQA-style value.
    pub fn noiseless_expectation(&self, term: &PauliString) -> f64 {
        if term.is_identity() {
            return 1.0;
        }
        self.back_propagate(term, false)
    }

    /// Minimum Hamiltonian size at which [`ExactEvaluator::energy`] routes
    /// through the bit-parallel batched pass. Below this the lane-packing
    /// and per-chunk plane work outweigh the shared-walk win; energies are
    /// bit-identical either way, so the threshold is purely a performance
    /// knob.
    pub const BATCH_MIN_TERMS: usize = 8;

    /// Noisy energy of a full Hamiltonian: `Σ_i c_i ⟨P_i⟩_noisy` (the `LN`
    /// building block, Eq. 9).
    ///
    /// Hamiltonians with at least [`ExactEvaluator::BATCH_MIN_TERMS`] terms
    /// take the bit-parallel batched pass ([`ExactEvaluator::energy_batched`]:
    /// one circuit walk per 64 terms); smaller ones take the scalar walk
    /// ([`ExactEvaluator::energy_scalar`]). The two paths are bit-identical.
    pub fn energy(&self, hamiltonian: &PauliSum) -> f64 {
        if hamiltonian.num_terms() >= ExactEvaluator::BATCH_MIN_TERMS {
            self.energy_batched(hamiltonian)
        } else {
            self.energy_scalar(hamiltonian)
        }
    }

    /// Noiseless energy of a full Hamiltonian, with the same batched/scalar
    /// dispatch as [`ExactEvaluator::energy`].
    pub fn noiseless_energy(&self, hamiltonian: &PauliSum) -> f64 {
        if hamiltonian.num_terms() >= ExactEvaluator::BATCH_MIN_TERMS {
            self.noiseless_energy_batched(hamiltonian)
        } else {
            self.noiseless_energy_scalar(hamiltonian)
        }
    }

    /// The term-at-a-time reference implementation of
    /// [`ExactEvaluator::energy`]: one full reverse circuit walk per term.
    /// Kept as the differential-test oracle and the baseline of the
    /// `ln_exact_speedup` BENCH comparison.
    pub fn energy_scalar(&self, hamiltonian: &PauliSum) -> f64 {
        let terms = hamiltonian.num_terms() as u64;
        let metrics = kernel_metrics();
        metrics.exact_terms.add(terms);
        metrics.exact_walks.add(terms);
        hamiltonian
            .iter()
            .map(|(c, p)| c * self.expectation(p))
            .sum()
    }

    /// The term-at-a-time reference implementation of
    /// [`ExactEvaluator::noiseless_energy`].
    pub fn noiseless_energy_scalar(&self, hamiltonian: &PauliSum) -> f64 {
        hamiltonian
            .iter()
            .map(|(c, p)| c * self.noiseless_expectation(p))
            .sum()
    }

    /// Bit-parallel noisy energy: back-propagates the Hamiltonian in
    /// `⌈M/64⌉` reverse circuit walks instead of `M` (see the shared batch
    /// pass below). Bit-identical to [`ExactEvaluator::energy_scalar`].
    pub fn energy_batched(&self, hamiltonian: &PauliSum) -> f64 {
        self.energy_batch_pass(hamiltonian, true)
    }

    /// Bit-parallel noiseless energy (all damping dropped). Bit-identical
    /// to [`ExactEvaluator::noiseless_energy_scalar`].
    pub fn noiseless_energy_batched(&self, hamiltonian: &PauliSum) -> f64 {
        self.energy_batch_pass(hamiltonian, false)
    }

    /// The shared walk behind the batched energies: packs up to 64 term
    /// observables into a [`TermBatch`] (transposed planes + sign plane)
    /// and conjugates all lanes through the circuit at once.
    ///
    /// Per chunk of ≤64 terms:
    ///
    /// 1. **Per-lane init** — the scalar walk starts each term at the Z
    ///    string on its support (collecting readout factors `1-2p_k`) and
    ///    then back-propagates the term's private `basis_prep_ops`; by
    ///    construction that prep segment exactly rebuilds the original term
    ///    with sign `+1` (`H` maps `Z → X`, `H·S` maps `Z → Y`, both
    ///    sign-free), while its interleaved depolarizing slots always damp
    ///    (the observable never leaves the slot's qubit). So the lane loads
    ///    the term itself, and the prep damping reduces to a closed-form
    ///    product — applied in the scalar walk's exact multiply order
    ///    (readout over ascending support, then prep slots over descending
    ///    support, two per `Y` and one per `X`) so the factor rounds
    ///    bit-identically.
    /// 2. **One shared reverse walk** — the memoized
    ///    [`NoisyCircuit::reversed_inverted_ops`] list is traversed once:
    ///    Clifford gates act on all 64 lanes by word-level signed
    ///    conjugation (`CliffordGate::conjugate_terms`); depolarizing
    ///    channels compute a 64-lane support mask (`x|z` plane words) and
    ///    damp exactly the supported lanes (see [`damp_lanes`]), in op
    ///    order, so each lane's factor multiplies in the same sequence as
    ///    the scalar walk.
    /// 3. **Readout** — lanes with any surviving x-plane bit are traceless
    ///    on `|0…0⟩` and contribute `0`; the rest contribute
    ///    `±factor` by their sign bit. Contributions accumulate in term
    ///    order, so the total is bit-identical to the scalar sum.
    fn energy_batch_pass(&self, hamiltonian: &PauliSum, with_noise: bool) -> f64 {
        let terms = hamiltonian.num_terms() as u64;
        let metrics = kernel_metrics();
        metrics.exact_terms.add(terms);
        metrics
            .exact_walks
            .add(terms.div_ceil(TermBatch::LANES as u64));
        let n = self.circuit.num_qubits();
        let mut total = 0.0;
        let mut batch = TermBatch::new(n);
        let mut factors = [1.0f64; TermBatch::LANES];
        for chunk in hamiltonian.terms().chunks(TermBatch::LANES) {
            batch.clear();
            let mut identity_lanes = 0u64;
            for (lane, term) in chunk.iter().enumerate() {
                if term.pauli.is_identity() {
                    identity_lanes |= 1 << lane;
                    continue;
                }
                let mut factor = 1.0;
                if with_noise {
                    for q in term.pauli.support() {
                        factor *= 1.0 - 2.0 * self.circuit.readout(q);
                    }
                    // Prep-slot damping in the scalar walk's order: support
                    // descending (the prep list is walked reversed), two
                    // slots per Y (S† and H each carry one), one per X,
                    // none per Z — and no slot at all when the gate error
                    // vanishes (basis_prep_ops omits it).
                    let (xw, zw) = (term.pauli.x_words(), term.pauli.z_words());
                    for w in (0..xw.len()).rev() {
                        let mut bits = xw[w];
                        while bits != 0 {
                            let b = 63 - bits.leading_zeros();
                            bits &= !(1u64 << b);
                            let q = w * 64 + b as usize;
                            let p = self.circuit.gate_p1(q);
                            if p > 0.0 {
                                let damp = 1.0 - 4.0 * p / 3.0;
                                factor *= damp;
                                if (zw[w] >> b) & 1 == 1 {
                                    factor *= damp; // Y: second slot
                                }
                            }
                        }
                    }
                }
                factors[lane] = factor;
                batch.set_lane(lane, &term.pauli, false);
            }
            // The shared circuit walk, once for all lanes of the chunk.
            for op in self.circuit.reversed_inverted_ops() {
                match *op {
                    NoisyOp::Clifford(g) => g.conjugate_terms(&mut batch),
                    NoisyOp::Depol1(q, p) => {
                        if with_noise {
                            let supported = batch.support_mask(q);
                            damp_lanes(&mut factors, supported, 1.0 - 4.0 * p / 3.0);
                        }
                    }
                    NoisyOp::Depol2(a, b, p) => {
                        if with_noise {
                            let supported = batch.support_mask(a) | batch.support_mask(b);
                            damp_lanes(&mut factors, supported, 1.0 - 16.0 * p / 15.0);
                        }
                    }
                }
            }
            let traceless = batch.any_x_mask();
            let signs = batch.sign_mask();
            for (lane, term) in chunk.iter().enumerate() {
                let bit = 1u64 << lane;
                let value = if identity_lanes & bit != 0 {
                    1.0
                } else if traceless & bit != 0 {
                    0.0
                } else if signs & bit != 0 {
                    -factors[lane]
                } else {
                    factors[lane]
                };
                total += term.coefficient * value;
            }
        }
        total
    }

    fn back_propagate(&self, term: &PauliString, with_noise: bool) -> f64 {
        let n = self.circuit.num_qubits();
        let mut factor = 1.0;
        // Measured observable: the Z string on the support (basis prep maps
        // the term there).
        let mut obs = PauliString::identity(n);
        for q in term.support() {
            obs.set(q, Pauli::Z);
            if with_noise {
                factor *= 1.0 - 2.0 * self.circuit.readout(q);
            }
        }
        let mut sign = 1.0;
        let prep = self.circuit.basis_prep_ops(term);
        // The prep ops are reversed-and-inverted inline (per-term, tiny);
        // the circuit's list is built once and memoized.
        let prep_rev = prep.iter().rev().map(|op| match *op {
            NoisyOp::Clifford(g) => NoisyOp::Clifford(g.inverse()),
            other => other,
        });
        for op in prep_rev.chain(self.circuit.reversed_inverted_ops().iter().copied()) {
            match op {
                NoisyOp::Clifford(g) => {
                    // O ← g† O g (g already inverted).
                    if g.conjugate(&mut obs) {
                        sign = -sign;
                    }
                }
                NoisyOp::Depol1(q, p) => {
                    if with_noise && obs.acts_on(q) {
                        factor *= 1.0 - 4.0 * p / 3.0;
                    }
                }
                NoisyOp::Depol2(a, b, p) => {
                    if with_noise && (obs.acts_on(a) || obs.acts_on(b)) {
                        factor *= 1.0 - 16.0 * p / 15.0;
                    }
                }
            }
        }
        if !obs.is_z_type() {
            return 0.0;
        }
        sign * factor
    }
}

/// Pauli-frame Monte Carlo sampler — the faithful stim-style estimator the
/// paper used for `LN`, running 64 shots per pass.
///
/// Per shot, Pauli errors are sampled at each channel and propagated forward
/// as a frame; the measured outcome of the (stabilizer) observable is its
/// deterministic noiseless value (`±1`, or a fair coin when the noiseless
/// expectation vanishes) times the frame's commutation sign and the sampled
/// readout flips.
///
/// The propagation is **bit-parallel**: frames travel through the circuit as
/// a [`FrameBatch`] (64 shots transposed into one `u64` x/z word pair per
/// qubit), so Clifford conjugation, depolarizing-error injection
/// ([`BernoulliWords`] buffered geometric masks plus word-level rejection
/// for the uniform Pauli kick), commutation-sign extraction and readout
/// flips are all word-level boolean algebra instead of per-shot
/// `get`/`mul`/`set` calls. Shot counts are rounded up to whole 64-shot
/// words internally, but the estimate averages over exactly `shots`
/// outcomes (the trailing word is masked), and results are deterministic
/// for a fixed RNG seed. [`FrameSampler::expectation_scalar`] keeps the
/// one-frame-per-shot reference implementation; the two paths sample the
/// same noise distribution (not the same RNG stream).
///
/// # Example
///
/// ```
/// use clapton_circuits::{Circuit, Gate};
/// use clapton_noise::{ExactEvaluator, FrameSampler, NoiseModel, NoisyCircuit};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// let model = NoiseModel::uniform(2, 2e-3, 1e-2, 1e-2);
/// let noisy = NoisyCircuit::from_circuit(&c, &model)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let zz = "ZZ".parse().unwrap();
/// let sampled = FrameSampler::new(&noisy).expectation(&zz, 20_000, &mut rng);
/// let exact = ExactEvaluator::new(&noisy).expectation(&zz);
/// assert!((sampled - exact).abs() < 0.03);
/// # Ok::<(), clapton_noise::NotCliffordError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameSampler<'a> {
    circuit: &'a NoisyCircuit,
}

impl<'a> FrameSampler<'a> {
    /// Wraps a noisy circuit.
    pub fn new(circuit: &'a NoisyCircuit) -> FrameSampler<'a> {
        FrameSampler { circuit }
    }

    /// Precomputes everything about one term that is shot-independent: the
    /// noiseless back-propagated expectation, the measurement-basis prep
    /// ops, and the post-prep `Z` observable. One [`TermPrep`] serves any
    /// number of shots, [`FrameSampler::expectation_prepared`] calls, and —
    /// through a [`TermCache`] — population batches.
    pub fn prepare(&self, term: &PauliString) -> TermPrep {
        let n = self.circuit.num_qubits();
        let support: Vec<usize> = term.support().collect();
        let mut z_obs = PauliString::identity(n);
        for &q in &support {
            z_obs.set(q, Pauli::Z);
        }
        let prep_ops = self.circuit.basis_prep_ops(term);
        // Sampler templates (one per stochastic op, in op order, then one
        // per readout site): building one costs a transcendental
        // (`ln_1p().recip()`), so it is done here — once per term, cached
        // by TermCache — and cloned per expectation call (only the gap
        // state is per-call).
        let channels = self
            .circuit
            .ops()
            .iter()
            .chain(prep_ops.iter())
            .filter_map(|op| match *op {
                NoisyOp::Depol1(_, p) | NoisyOp::Depol2(_, _, p) => Some(BernoulliWords::new(p)),
                NoisyOp::Clifford(_) => None,
            })
            .collect();
        let readout = support
            .iter()
            .map(|&q| BernoulliWords::new(self.circuit.readout(q)))
            .collect();
        TermPrep {
            noiseless: ExactEvaluator::new(self.circuit).noiseless_expectation(term),
            prep_ops,
            z_obs,
            support,
            channels,
            readout,
            identity: term.is_identity(),
            circuit: self.circuit.fingerprint(),
        }
    }

    /// Estimates the noisy expectation of one term from `shots` samples
    /// (bit-parallel, 64 shots per circuit pass).
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn expectation<R: Rng + ?Sized>(
        &self,
        term: &PauliString,
        shots: usize,
        rng: &mut R,
    ) -> f64 {
        self.expectation_prepared(&self.prepare(term), shots, rng)
    }

    /// [`FrameSampler::expectation`] with the term preparation hoisted out
    /// (see [`FrameSampler::prepare`]).
    ///
    /// Propagates `⌈shots/64⌉` frame words through the circuit; the mean is
    /// taken over exactly `shots` outcomes (the final partial word is
    /// masked). Every stochastic channel owns a [`BernoulliWords`] sampler
    /// whose geometric gap state carries across words, so the error
    /// placements form one exact Bernoulli process over the shot sequence.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`, or if `prep` was built against a different
    /// circuit (validated via the memoized content fingerprint, so
    /// cross-circuit misuse fails loudly instead of sampling wrong
    /// physics).
    pub fn expectation_prepared<R: Rng + ?Sized>(
        &self,
        prep: &TermPrep,
        shots: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(shots > 0, "need at least one shot");
        assert_eq!(
            prep.circuit,
            self.circuit.fingerprint(),
            "TermPrep was built against a different circuit"
        );
        if prep.identity {
            return 1.0;
        }
        // Fresh gap state per call; the transcendental setup lives in the
        // templates built once by `prepare`.
        let mut channels = prep.channels.clone();
        let mut readout = prep.readout.clone();
        let mut batch = FrameBatch::new(self.circuit.num_qubits());
        let mut acc: i64 = 0;
        let mut remaining = shots;
        while remaining > 0 {
            batch.clear();
            let mut channel = channels.iter_mut();
            for op in self.circuit.ops().iter().chain(prep.prep_ops.iter()) {
                match *op {
                    NoisyOp::Clifford(g) => g.conjugate_frames(&mut batch),
                    NoisyOp::Depol1(q, _) => {
                        let mask = channel
                            .next()
                            .expect("channel list in op order")
                            .next_mask(rng);
                        if mask != 0 {
                            let (x, z) = uniform_pauli_planes(mask, rng);
                            batch.xor_x(q, x);
                            batch.xor_z(q, z);
                        }
                    }
                    NoisyOp::Depol2(a, b, _) => {
                        let mask = channel
                            .next()
                            .expect("channel list in op order")
                            .next_mask(rng);
                        if mask != 0 {
                            let (xa, za, xb, zb) = uniform_pauli_pair_planes(mask, rng);
                            batch.xor_x(a, xa);
                            batch.xor_z(a, za);
                            batch.xor_x(b, xb);
                            batch.xor_z(b, zb);
                        }
                    }
                }
            }
            // Bit s set ⇔ shot s reads the negated base value: frame
            // anticommutation, sampled readout flips, the deterministic
            // base sign, and (if the expectation vanishes) a fair coin all
            // compose by XOR.
            let mut neg = batch.anticommutation_mask(&prep.z_obs);
            for sampler in readout.iter_mut() {
                neg ^= sampler.next_mask(rng);
            }
            if prep.noiseless < -0.5 {
                neg = !neg;
            } else if prep.noiseless.abs() <= 0.5 {
                neg ^= rng.gen::<u64>();
            }
            let lanes = remaining.min(FrameBatch::LANES);
            let live = if lanes == FrameBatch::LANES {
                !0u64
            } else {
                (1u64 << lanes) - 1
            };
            acc += lanes as i64 - 2 * i64::from((neg & live).count_ones());
            remaining -= lanes;
        }
        acc as f64 / shots as f64
    }

    /// The one-frame-per-shot reference implementation of
    /// [`FrameSampler::expectation`]: same noise semantics, scalar
    /// propagation. Kept for differential testing and as the baseline of
    /// the batched-vs-scalar BENCH comparison.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn expectation_scalar<R: Rng + ?Sized>(
        &self,
        term: &PauliString,
        shots: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(shots > 0, "need at least one shot");
        // Same shot-independent derivation as the batched path — the
        // differential coverage is in the propagation, not the prep.
        let prep = self.prepare(term);
        if prep.identity {
            return 1.0;
        }
        let n = self.circuit.num_qubits();
        let noiseless = prep.noiseless;
        let mut acc: i64 = 0;
        for _ in 0..shots {
            let mut frame = PauliString::identity(n);
            for op in self.circuit.ops().iter().chain(prep.prep_ops.iter()) {
                match *op {
                    NoisyOp::Clifford(g) => {
                        g.conjugate(&mut frame);
                    }
                    NoisyOp::Depol1(q, p) => {
                        if rng.gen::<f64>() < p {
                            let e = [Pauli::X, Pauli::Y, Pauli::Z][rng.gen_range(0..3)];
                            mul_pauli_into(&mut frame, q, e);
                        }
                    }
                    NoisyOp::Depol2(a, b, p) => {
                        if rng.gen::<f64>() < p {
                            let k = rng.gen_range(1..16u8);
                            let (ka, kb) = (k & 3, k >> 2);
                            if ka != 0 {
                                mul_pauli_into(&mut frame, a, index_pauli(ka));
                            }
                            if kb != 0 {
                                mul_pauli_into(&mut frame, b, index_pauli(kb));
                            }
                        }
                    }
                }
            }
            // Stabilizer measurement outcome: deterministic noiseless value,
            // or a fair coin when the expectation vanishes.
            let base: i64 = if noiseless > 0.5 {
                1
            } else if noiseless < -0.5 {
                -1
            } else if rng.gen::<bool>() {
                1
            } else {
                -1
            };
            let mut outcome = if frame.commutes_with(&prep.z_obs) {
                base
            } else {
                -base
            };
            for &q in &prep.support {
                if rng.gen::<f64>() < self.circuit.readout(q) {
                    outcome = -outcome;
                }
            }
            acc += outcome;
        }
        acc as f64 / shots as f64
    }

    /// Estimates the noisy energy of a Hamiltonian with `shots` per term.
    pub fn energy<R: Rng + ?Sized>(
        &self,
        hamiltonian: &PauliSum,
        shots: usize,
        rng: &mut R,
    ) -> f64 {
        self.energy_cached(hamiltonian, shots, rng, &TermCache::new())
    }

    /// [`FrameSampler::energy`] with per-term preparation served from (and
    /// recorded into) `cache`, so the noiseless back-propagation and
    /// basis-prep derivation are paid once per distinct term across calls —
    /// e.g. across a whole GA population batch scored against one prepared
    /// circuit.
    ///
    /// Cache lookups consume no randomness, so energies are bit-identical
    /// whether the cache is cold, warm, or shared between threads.
    pub fn energy_cached<R: Rng + ?Sized>(
        &self,
        hamiltonian: &PauliSum,
        shots: usize,
        rng: &mut R,
        cache: &TermCache,
    ) -> f64 {
        cache.bind(self);
        let terms = hamiltonian.num_terms() as u64;
        let metrics = kernel_metrics();
        metrics.sampled_terms.add(terms);
        metrics.sampled_frames.add(terms * shots as u64);
        hamiltonian
            .iter()
            .map(|(c, p)| {
                c * self.expectation_prepared(&cache.prepared_unchecked(self, p), shots, rng)
            })
            .sum()
    }
}

/// Shot-independent preparation of one Pauli term against one
/// [`NoisyCircuit`]: built by [`FrameSampler::prepare`], consumed by
/// [`FrameSampler::expectation_prepared`].
#[derive(Debug, Clone)]
pub struct TermPrep {
    /// Exact noiseless expectation `⟨0|C†PC|0⟩` (the deterministic
    /// stabilizer measurement base: `±1`, or `0` for a fair coin).
    noiseless: f64,
    /// Measurement-basis rotation ops (with their noise slots).
    prep_ops: Vec<NoisyOp>,
    /// The measured observable after basis prep: `Z` on the support.
    z_obs: PauliString,
    /// Support qubits (readout-error sites).
    support: Vec<usize>,
    /// Mask-sampler templates, one per stochastic op of circuit + prep in
    /// op order (`ln(1-p)` precomputed; gap state reset per clone).
    channels: Vec<BernoulliWords>,
    /// Mask-sampler templates for the readout flips, one per support site.
    readout: Vec<BernoulliWords>,
    /// Identity terms short-circuit to expectation `1`.
    identity: bool,
    /// Fingerprint of the circuit this preparation belongs to.
    circuit: u64,
}

impl TermPrep {
    /// The exact noiseless expectation of the prepared term.
    pub fn noiseless(&self) -> f64 {
        self.noiseless
    }
}

/// A concurrent memo of [`TermPrep`]s keyed by Pauli term.
///
/// One cache serves one fixed [`NoisyCircuit`] (preparations embed
/// circuit-dependent data); callers that score many Hamiltonians against
/// the same prepared circuit — the GA's population batch path — attach one
/// cache to the circuit and stop re-deriving per-term preparation on every
/// energy call. The cache pins itself to the first circuit it sees (a
/// content fingerprint) and panics if later used with a different one, so
/// cross-circuit sharing fails loudly instead of returning wrong physics.
#[derive(Debug, Default)]
pub struct TermCache {
    map: RwLock<HashMap<PauliString, Arc<TermPrep>>>,
    /// Fingerprint of the circuit the cached preparations belong to.
    circuit: OnceLock<u64>,
}

impl TermCache {
    /// An empty cache.
    pub fn new() -> TermCache {
        TermCache::default()
    }

    /// Number of distinct terms prepared so far.
    pub fn len(&self) -> usize {
        self.map.read().expect("term cache poisoned").len()
    }

    /// Whether no term has been prepared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memoized entries are capped: caches can now live as long as a whole
    /// GA run (one per prepared loss object), and every distinct
    /// transformed term inserts an entry, so an unbounded map would grow
    /// with the number of distinct genomes visited. Past the cap, terms
    /// outside the cache are prepared on the fly (correct, just not
    /// memoized); the hot early terms stay resident.
    const MAX_TERMS: usize = 1 << 14;

    /// The preparation of `term` under `sampler`'s circuit, computed at
    /// most once per distinct cached term.
    ///
    /// # Panics
    ///
    /// Panics if the cache already holds preparations for a different
    /// circuit.
    pub fn prepared(&self, sampler: &FrameSampler<'_>, term: &PauliString) -> Arc<TermPrep> {
        self.bind(sampler);
        self.prepared_unchecked(sampler, term)
    }

    /// Pins the cache to `sampler`'s circuit (first use) or asserts that it
    /// is already pinned to it. The fingerprint is memoized inside
    /// [`NoisyCircuit`], so after the circuit's first hash this is one
    /// atomic load and a `u64` compare per call.
    fn bind(&self, sampler: &FrameSampler<'_>) {
        let fingerprint = sampler.circuit.fingerprint();
        let bound = *self.circuit.get_or_init(|| fingerprint);
        assert_eq!(
            bound, fingerprint,
            "TermCache is pinned to a different circuit (one cache per NoisyCircuit)"
        );
    }

    /// [`TermCache::prepared`] without the circuit-fingerprint check; the
    /// caller must have validated via [`TermCache::bind`].
    fn prepared_unchecked(&self, sampler: &FrameSampler<'_>, term: &PauliString) -> Arc<TermPrep> {
        if let Some(prep) = self.map.read().expect("term cache poisoned").get(term) {
            return Arc::clone(prep);
        }
        let prep = Arc::new(sampler.prepare(term));
        let mut map = self.map.write().expect("term cache poisoned");
        if map.len() >= TermCache::MAX_TERMS && !map.contains_key(term) {
            return prep;
        }
        Arc::clone(map.entry(term.clone()).or_insert(prep))
    }
}

/// Multiplies `damp` into every factor whose `supported` bit is set.
///
/// Sparse masks take a set-bit loop; dense masks take a branch-free select
/// loop (`× damp` or `× 1.0` per lane) the compiler can vectorize — for
/// finite factors `f × 1.0` is bit-exact `f` (IEEE 754), so both shapes
/// multiply each supported lane by exactly the same sequence the scalar
/// walk would, preserving batch-vs-scalar bit-identity.
#[inline]
fn damp_lanes(factors: &mut [f64; TermBatch::LANES], supported: u64, damp: f64) {
    if supported.count_ones() < 16 {
        let mut mask = supported;
        while mask != 0 {
            factors[mask.trailing_zeros() as usize] *= damp;
            mask &= mask - 1;
        }
    } else {
        for (lane, factor) in factors.iter_mut().enumerate() {
            let d = if (supported >> lane) & 1 == 1 {
                damp
            } else {
                1.0
            };
            *factor *= d;
        }
    }
}

/// Multiplies the single-qubit Pauli `e` into position `q` of `frame`
/// (phases irrelevant for error frames).
fn mul_pauli_into(frame: &mut PauliString, q: usize, e: Pauli) {
    let (_, prod) = frame.get(q).mul(e);
    frame.set(q, prod);
}

/// Decodes a 2-bit index into a Pauli (`1 → X`, `2 → Y`, `3 → Z`).
fn index_pauli(k: u8) -> Pauli {
    match k {
        1 => Pauli::X,
        2 => Pauli::Y,
        3 => Pauli::Z,
        _ => unreachable!("index 0 is identity"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoiseModel;
    use clapton_circuits::{Circuit, Gate};
    use clapton_stabilizer::StabilizerState;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    fn noisy(c: &Circuit, m: &NoiseModel) -> NoisyCircuit {
        NoisyCircuit::from_circuit(c, m).unwrap()
    }

    #[test]
    fn noiseless_identity_circuit() {
        let c = Circuit::new(2);
        let nc = noisy(&c, &NoiseModel::noiseless(2));
        let eval = ExactEvaluator::new(&nc);
        assert_eq!(eval.expectation(&ps("ZI")), 1.0);
        assert_eq!(eval.expectation(&ps("XI")), 0.0);
        assert_eq!(eval.expectation(&ps("II")), 1.0);
    }

    #[test]
    fn depolarizing_damps_z_after_x_gate() {
        let p = 3e-3;
        let r = 1e-2;
        let mut c = Circuit::new(1);
        c.push(Gate::X(0));
        let model = NoiseModel::uniform(1, p, 0.0, r);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        let expected = -(1.0 - 4.0 * p / 3.0) * (1.0 - 2.0 * r);
        assert!((eval.expectation(&ps("Z")) - expected).abs() < 1e-14);
        // Noiseless variant ignores the damping.
        assert_eq!(eval.noiseless_expectation(&ps("Z")), -1.0);
    }

    #[test]
    fn two_qubit_depolarizing_factor() {
        let p2 = 1e-2;
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        let model = NoiseModel::uniform(2, 0.0, p2, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        // ⟨Z0⟩ through one CX with 2q depolarizing: factor 1 - 16p/15.
        let expected = 1.0 - 16.0 * p2 / 15.0;
        assert!((eval.expectation(&ps("ZI")) - expected).abs() < 1e-14);
        assert!((eval.expectation(&ps("ZZ")) - expected).abs() < 1e-14);
    }

    #[test]
    fn x_basis_measurement_includes_prep_noise() {
        // |+⟩ = H|0⟩ measured in X basis: prep H carries gate noise, and the
        // circuit's H also carries noise → ⟨X⟩ = (1-4p/3)² (no readout err).
        let p = 2e-3;
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        let model = NoiseModel::uniform(1, p, 0.0, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        let expected = (1.0 - 4.0 * p / 3.0) * (1.0 - 4.0 * p / 3.0);
        assert!((eval.expectation(&ps("X")) - expected).abs() < 1e-14);
    }

    #[test]
    fn y_basis_prep_has_two_noisy_gates() {
        // ⟨Y⟩ on √X|0⟩ = -1; prep is S†,H → two extra noise slots plus the
        // circuit's own gate slot: factor (1-4p/3)³.
        let p = 1e-3;
        let mut c = Circuit::new(1);
        c.push(Gate::Ry(0, 0.0)); // identity slot, still noisy
        let model = NoiseModel::uniform(1, p, 0.0, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        let f = 1.0 - 4.0 * p / 3.0;
        // Term Y on |0⟩ is traceless → 0 regardless of damping.
        assert_eq!(eval.expectation(&ps("Y")), 0.0);
        // Term Z: no basis prep, one identity-slot noise. Z supported.
        assert!((eval.expectation(&ps("Z")) - f).abs() < 1e-14);
    }

    #[test]
    fn unsupported_qubits_are_not_damped() {
        // Noise on qubit 1 must not damp an observable supported on qubit 0.
        let mut c = Circuit::new(2);
        c.push(Gate::H(1));
        let model = NoiseModel::uniform(2, 5e-2, 0.0, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        assert_eq!(eval.expectation(&ps("ZI")), 1.0);
    }

    #[test]
    fn noiseless_backprop_matches_stabilizer_state() {
        let mut rng = StdRng::seed_from_u64(71);
        use rand::Rng;
        for _ in 0..20 {
            let n = rng.gen_range(2..6);
            let mut c = Circuit::new(n);
            for _ in 0..15 {
                match rng.gen_range(0..4) {
                    0 => c.push(Gate::H(rng.gen_range(0..n))),
                    1 => c.push(Gate::S(rng.gen_range(0..n))),
                    2 => c.push(Gate::Ry(rng.gen_range(0..n), std::f64::consts::FRAC_PI_2)),
                    _ => {
                        let a = rng.gen_range(0..n);
                        let mut b = rng.gen_range(0..n);
                        while b == a {
                            b = rng.gen_range(0..n);
                        }
                        c.push(Gate::Cx(a, b));
                    }
                }
            }
            let nc = noisy(&c, &NoiseModel::noiseless(n));
            let eval = ExactEvaluator::new(&nc);
            let mut st = StabilizerState::new(n);
            st.apply_all(&c.to_clifford().unwrap());
            for _ in 0..10 {
                let p = PauliString::random(n, &mut rng);
                assert_eq!(
                    eval.noiseless_expectation(&p),
                    st.expectation(&p),
                    "circuit {c} term {p}"
                );
            }
        }
    }

    #[test]
    fn energy_sums_terms() {
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        let nc = noisy(&c, &NoiseModel::noiseless(2));
        let eval = ExactEvaluator::new(&nc);
        let h = PauliSum::from_terms(2, vec![(1.0, ps("ZI")), (2.0, ps("IZ")), (0.5, ps("II"))]);
        assert_eq!(eval.energy(&h), -1.0 + 2.0 + 0.5);
    }

    #[test]
    fn sampler_converges_to_exact_single_qubit() {
        let p = 5e-2;
        let r = 3e-2;
        let mut c = Circuit::new(1);
        c.push(Gate::X(0));
        let model = NoiseModel::uniform(1, p, 0.0, r);
        let nc = noisy(&c, &model);
        let exact = ExactEvaluator::new(&nc).expectation(&ps("Z"));
        let mut rng = StdRng::seed_from_u64(99);
        let sampled = FrameSampler::new(&nc).expectation(&ps("Z"), 40_000, &mut rng);
        assert!(
            (sampled - exact).abs() < 0.02,
            "sampled {sampled} vs exact {exact}"
        );
    }

    #[test]
    fn sampler_converges_to_exact_entangled() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        let model = NoiseModel::uniform(3, 1e-2, 4e-2, 2e-2);
        let nc = noisy(&c, &model);
        let mut rng = StdRng::seed_from_u64(123);
        for term in ["ZZI", "IZZ", "XXX", "ZIZ"] {
            let exact = ExactEvaluator::new(&nc).expectation(&ps(term));
            let sampled = FrameSampler::new(&nc).expectation(&ps(term), 40_000, &mut rng);
            assert!(
                (sampled - exact).abs() < 0.03,
                "term {term}: sampled {sampled} vs exact {exact}"
            );
        }
    }

    #[test]
    fn two_qubit_channel_damps_single_qubit_observables_on_either_leg() {
        // A 2q depolarizing channel damps any observable overlapping the
        // pair, including observables supported on only one of the qubits.
        let p2 = 2e-2;
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(1, 2));
        let model = NoiseModel::uniform(3, 0.0, p2, 0.0);
        let nc = noisy(&c, &model);
        let eval = ExactEvaluator::new(&nc);
        let f = 1.0 - 16.0 * p2 / 15.0;
        assert!((eval.expectation(&ps("IZI")) - f).abs() < 1e-14);
        assert!((eval.expectation(&ps("IIZ")) - f).abs() < 1e-14);
        // Qubit 0 is untouched by the channel.
        assert_eq!(eval.expectation(&ps("ZII")), 1.0);
    }

    #[test]
    fn damping_factors_compose_multiplicatively() {
        // Two sequential X gates on the same qubit: two 1q channels, each
        // damping ⟨Z⟩ by (1-4p/3); the X flips cancel.
        let p = 1e-2;
        let mut c = Circuit::new(1);
        c.push(Gate::X(0));
        c.push(Gate::X(0));
        let model = NoiseModel::uniform(1, p, 0.0, 0.0);
        let nc = noisy(&c, &model);
        let f = 1.0 - 4.0 * p / 3.0;
        let eval = ExactEvaluator::new(&nc);
        assert!((eval.expectation(&ps("Z")) - f * f).abs() < 1e-14);
    }

    #[test]
    fn identity_term_is_never_damped() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        let model = NoiseModel::uniform(2, 0.5, 0.5, 0.5);
        let nc = noisy(&c, &model);
        assert_eq!(ExactEvaluator::new(&nc).expectation(&ps("II")), 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            FrameSampler::new(&nc).expectation(&ps("II"), 10, &mut rng),
            1.0
        );
    }

    #[test]
    fn full_strength_readout_error_inverts_sign() {
        // readout p = 1 flips every bit deterministically: ⟨Z⟩ on |0⟩ = -1.
        let c = Circuit::new(1);
        let model = NoiseModel::uniform(1, 0.0, 0.0, 1.0);
        let nc = noisy(&c, &model);
        assert_eq!(ExactEvaluator::new(&nc).expectation(&ps("Z")), -1.0);
    }

    #[test]
    fn sampler_zero_expectation_stays_near_zero() {
        let c = Circuit::new(1);
        let nc = noisy(&c, &NoiseModel::uniform(1, 1e-2, 0.0, 1e-2));
        let mut rng = StdRng::seed_from_u64(7);
        let sampled = FrameSampler::new(&nc).expectation(&ps("X"), 40_000, &mut rng);
        assert!(sampled.abs() < 0.02, "sampled {sampled}");
    }
}
