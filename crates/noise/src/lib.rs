//! Clifford-simulable device noise for the Clapton reproduction.
//!
//! The paper models three error sources (§2.2, §4.2):
//!
//! * **gate errors** as depolarizing channels after every gate (1q strength
//!   `p`: one of `X/Y/Z` with chance `p/3`; 2q strength `p`: one of the 15
//!   non-identity two-qubit Paulis with chance `p/15` — the stim convention),
//! * **measurement errors** as classical bit flips with per-qubit probability
//!   `p_k` just before readout,
//! * **thermal relaxation** (T1 decay) — *not* Clifford-simulable; it is
//!   carried in the [`NoiseModel`] for the dense density-matrix simulator
//!   (`clapton-sim`) and deliberately absent from the Clifford evaluators,
//!   exactly as in the paper (§4.2.1: Clapton counters relaxation by
//!   transforming toward `|0⟩`, not by modeling it in `LN`).
//!
//! Two evaluators compute the noisy expectation `⟨0|Ã†(0) P Ã(0)|0⟩` of
//! Eq. 9:
//!
//! * [`ExactEvaluator`] — closed form. For stochastic Pauli channels acting
//!   on a Clifford circuit the Heisenberg-picture observable just picks up a
//!   scalar damping factor per channel (`1-4p/3`, `1-16p/15`, `1-2p_k`), so
//!   the noisy expectation is exact with **zero sampling error**. Full
//!   Hamiltonian energies back-propagate bit-parallel: 64 terms share one
//!   reverse circuit walk through a signed [`clapton_pauli::TermBatch`]
//!   (transposed planes + sign plane), bit-identical to the retained
//!   term-at-a-time scalar reference.
//! * [`FrameSampler`] — faithful stim-style Pauli-frame Monte Carlo (what the
//!   paper actually ran); its mean converges to the exact value, which the
//!   tests pin down. Frames propagate 64 shots at a time through a
//!   bit-parallel [`clapton_pauli::FrameBatch`]; per-term preparation is
//!   hoisted into [`TermPrep`] and shared across calls via [`TermCache`].

mod circuit;
mod evaluator;
mod model;

pub use circuit::{NoisyCircuit, NoisyOp, NotCliffordError};
pub use evaluator::{ExactEvaluator, FrameSampler, TermCache, TermPrep};
pub use model::{GateDurations, NoiseModel};
