//! Device noise models: per-qubit/per-edge error rates and timing data.

use std::collections::BTreeMap;

/// Gate and readout durations in seconds, used for thermal-relaxation
/// modeling in the dense simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDurations {
    /// Single-qubit gate duration.
    pub single: f64,
    /// Two-qubit gate duration.
    pub two: f64,
    /// Measurement duration.
    pub readout: f64,
}

impl Default for GateDurations {
    /// Representative IBM Falcon values: 35 ns / 450 ns / 860 ns.
    fn default() -> GateDurations {
        GateDurations {
            single: 35e-9,
            two: 450e-9,
            readout: 860e-9,
        }
    }
}

/// A per-qubit / per-edge noise model (the calibration view Clapton consumes,
/// §5.2.2: "Clapton extracts the required parameters for gate and measurement
/// errors from the noise models or machine calibration data").
///
/// # Example
///
/// ```
/// use clapton_noise::NoiseModel;
///
/// let mut model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
/// model.set_t1_uniform(100e-6);
/// assert_eq!(model.p1(1), 1e-3);
/// assert_eq!(model.p2(0, 1), 1e-2);
/// assert_eq!(model.readout(2), 2e-2);
/// // SWAPs decompose into 3 CX on hardware: 3x the two-qubit error.
/// assert!((model.swap_error(0, 1) - 3e-2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    n: usize,
    p1: Vec<f64>,
    p2: BTreeMap<(usize, usize), f64>,
    p2_default: f64,
    readout: Vec<f64>,
    t1: Vec<f64>,
    durations: GateDurations,
    swap_factor: f64,
}

impl NoiseModel {
    /// A noiseless model on `n` qubits.
    pub fn noiseless(n: usize) -> NoiseModel {
        NoiseModel::uniform(n, 0.0, 0.0, 0.0)
    }

    /// A spatially uniform model: single-qubit depolarizing `p1`, two-qubit
    /// depolarizing `p2`, readout misassignment `readout`. T1 defaults to
    /// infinity (no relaxation).
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn uniform(n: usize, p1: f64, p2: f64, readout: f64) -> NoiseModel {
        for (name, p) in [("p1", p1), ("p2", p2), ("readout", readout)] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} not a probability");
        }
        NoiseModel {
            n,
            p1: vec![p1; n],
            p2: BTreeMap::new(),
            p2_default: p2,
            readout: vec![readout; n],
            t1: vec![f64::INFINITY; n],
            durations: GateDurations::default(),
            swap_factor: 3.0,
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Single-qubit depolarizing strength on `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn p1(&self, q: usize) -> f64 {
        self.p1[q]
    }

    /// Two-qubit depolarizing strength on the (unordered) pair `(a, b)`;
    /// falls back to the model default for pairs without calibration.
    pub fn p2(&self, a: usize, b: usize) -> f64 {
        let key = (a.min(b), a.max(b));
        self.p2.get(&key).copied().unwrap_or(self.p2_default)
    }

    /// Effective SWAP error: `swap_factor × p2` capped at 1 (a SWAP costs
    /// three CX gates on CX-native hardware).
    pub fn swap_error(&self, a: usize, b: usize) -> f64 {
        (self.swap_factor * self.p2(a, b)).min(1.0)
    }

    /// Readout misassignment probability of `q`.
    pub fn readout(&self, q: usize) -> f64 {
        self.readout[q]
    }

    /// T1 relaxation time of `q` in seconds (`INFINITY` = no decay).
    pub fn t1(&self, q: usize) -> f64 {
        self.t1[q]
    }

    /// Gate/readout durations.
    pub fn durations(&self) -> GateDurations {
        self.durations
    }

    /// Rejects rates outside `[0, 1]` at the model boundary: a depolarizing
    /// or readout rate beyond a probability silently corrupts the closed-form
    /// damping math downstream (the `1 - 4p/3`-style factors go negative or
    /// explode), so every setter funnels through this check.
    fn checked_probability(name: &str, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "{name} = {p} not a probability");
        p
    }

    /// Sets a per-qubit single-qubit error rate.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` (or `q` is out of range).
    pub fn set_p1(&mut self, q: usize, p: f64) {
        self.p1[q] = NoiseModel::checked_probability("p1", p);
    }

    /// Sets a per-edge two-qubit error rate.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn set_p2(&mut self, a: usize, b: usize, p: f64) {
        self.p2.insert(
            (a.min(b), a.max(b)),
            NoiseModel::checked_probability("p2", p),
        );
    }

    /// Sets the fallback two-qubit error rate for uncalibrated pairs.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn set_p2_default(&mut self, p: f64) {
        self.p2_default = NoiseModel::checked_probability("p2_default", p);
    }

    /// Sets a per-qubit readout error.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` (or `q` is out of range).
    pub fn set_readout(&mut self, q: usize, p: f64) {
        self.readout[q] = NoiseModel::checked_probability("readout", p);
    }

    /// Sets a per-qubit T1 time (seconds).
    pub fn set_t1(&mut self, q: usize, t1: f64) {
        self.t1[q] = t1;
    }

    /// Sets the same T1 on all qubits.
    pub fn set_t1_uniform(&mut self, t1: f64) {
        self.t1.iter_mut().for_each(|t| *t = t1);
    }

    /// Overrides the gate durations.
    pub fn set_durations(&mut self, durations: GateDurations) {
        self.durations = durations;
    }

    /// Overrides the SWAP decomposition cost factor (default 3.0).
    pub fn set_swap_factor(&mut self, factor: f64) {
        self.swap_factor = factor;
    }

    /// Whether any Pauli-channel noise is present (T1 not included).
    pub fn has_pauli_noise(&self) -> bool {
        self.p1.iter().any(|&p| p > 0.0)
            || self.p2_default > 0.0
            || self.p2.values().any(|&p| p > 0.0)
            || self.readout.iter().any(|&p| p > 0.0)
    }

    /// Whether thermal relaxation is active on any qubit.
    pub fn has_relaxation(&self) -> bool {
        self.t1.iter().any(|&t| t.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_round_trips() {
        let m = NoiseModel::uniform(4, 1e-3, 1e-2, 3e-2);
        for q in 0..4 {
            assert_eq!(m.p1(q), 1e-3);
            assert_eq!(m.readout(q), 3e-2);
            assert!(m.t1(q).is_infinite());
        }
        assert_eq!(m.p2(2, 3), 1e-2);
        assert!(m.has_pauli_noise());
        assert!(!m.has_relaxation());
    }

    #[test]
    fn per_edge_overrides() {
        let mut m = NoiseModel::uniform(3, 0.0, 1e-2, 0.0);
        m.set_p2(2, 1, 5e-2);
        assert_eq!(m.p2(1, 2), 5e-2);
        assert_eq!(m.p2(2, 1), 5e-2); // unordered
        assert_eq!(m.p2(0, 1), 1e-2); // fallback
    }

    #[test]
    fn swap_error_is_three_cx() {
        let m = NoiseModel::uniform(2, 0.0, 0.4, 0.0);
        assert_eq!(m.swap_error(0, 1), 1.0); // capped
        let m2 = NoiseModel::uniform(2, 0.0, 0.01, 0.0);
        assert!((m2.swap_error(0, 1) - 0.03).abs() < 1e-15);
    }

    #[test]
    fn relaxation_detection() {
        let mut m = NoiseModel::noiseless(2);
        assert!(!m.has_pauli_noise());
        m.set_t1(0, 80e-6);
        assert!(m.has_relaxation());
        assert!(!m.has_pauli_noise());
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn rejects_invalid_probability() {
        NoiseModel::uniform(2, 1.5, 0.0, 0.0);
    }

    // Regression: out-of-range rates used to pass straight through the
    // setters into the damping math (e.g. p1 = 1.5 makes the depolarizing
    // factor 1 - 2p go below -1, flipping expectation signs silently).
    #[test]
    #[should_panic(expected = "p1 = 1.5 not a probability")]
    fn setter_rejects_out_of_range_p1() {
        NoiseModel::noiseless(2).set_p1(0, 1.5);
    }

    #[test]
    #[should_panic(expected = "p2 = -0.1 not a probability")]
    fn setter_rejects_negative_p2() {
        NoiseModel::noiseless(2).set_p2(0, 1, -0.1);
    }

    #[test]
    #[should_panic(expected = "readout = NaN not a probability")]
    fn setter_rejects_nan_readout() {
        NoiseModel::noiseless(2).set_readout(1, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "p2_default = 2 not a probability")]
    fn setter_rejects_out_of_range_p2_default() {
        NoiseModel::noiseless(2).set_p2_default(2.0);
    }

    #[test]
    fn setters_accept_boundary_probabilities() {
        let mut m = NoiseModel::noiseless(2);
        m.set_p1(0, 0.0);
        m.set_p1(1, 1.0);
        m.set_p2(0, 1, 1.0);
        m.set_readout(0, 1.0);
        m.set_p2_default(0.0);
        assert_eq!(m.p1(1), 1.0);
        assert_eq!(m.p2(0, 1), 1.0);
    }
}
