//! Noisy Clifford circuits: gates interleaved with stochastic Pauli channels.

use crate::NoiseModel;
use clapton_circuits::{Circuit, Gate};
use clapton_pauli::{Pauli, PauliString};
use clapton_stabilizer::CliffordGate;
use std::fmt;
use std::sync::OnceLock;

/// Error returned when a circuit contains non-Clifford rotations and can
/// therefore not be turned into a [`NoisyCircuit`].
#[derive(Debug, Clone, PartialEq)]
pub struct NotCliffordError {
    gate: Gate,
}

impl fmt::Display for NotCliffordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gate {} is not on the Clifford grid", self.gate)
    }
}

impl std::error::Error for NotCliffordError {}

/// One instruction of a noisy Clifford circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoisyOp {
    /// A noiseless Clifford gate.
    Clifford(CliffordGate),
    /// Single-qubit depolarizing channel of strength `p` on a qubit
    /// (`X`, `Y` or `Z` each with probability `p/3`).
    Depol1(usize, f64),
    /// Two-qubit depolarizing channel of strength `p` on a pair (each of the
    /// 15 non-identity two-qubit Paulis with probability `p/15`).
    Depol2(usize, usize, f64),
}

/// A Clifford circuit with stochastic Pauli noise attached after every gate
/// slot, plus per-qubit readout flip probabilities — the `Ã(0)` (or `Ã(θ)`)
/// of Eq. 9.
///
/// Identity rotation slots (e.g. `Ry(0)` in `A(0)`) contribute **no unitary**
/// but still carry their depolarizing channel: the paper's noisy ansatz keeps
/// all physical gate slots.
///
/// # Example
///
/// ```
/// use clapton_circuits::{Circuit, Gate};
/// use clapton_noise::{NoiseModel, NoisyCircuit};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::Ry(0, 0.0)); // identity slot, still noisy
/// c.push(Gate::Cx(0, 1));
/// let model = NoiseModel::uniform(2, 1e-3, 1e-2, 2e-2);
/// let noisy = NoisyCircuit::from_circuit(&c, &model)?;
/// assert_eq!(noisy.ops().len(), 3); // Depol1 + CX + Depol2
/// assert_eq!(noisy.readout(1), 2e-2);
/// # Ok::<(), clapton_noise::NotCliffordError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NoisyCircuit {
    num_qubits: usize,
    ops: Vec<NoisyOp>,
    readout: Vec<f64>,
    p1: Vec<f64>,
    /// Lazily-memoized content fingerprint (see [`NoisyCircuit::fingerprint`]).
    fingerprint: OnceLock<u64>,
    /// Lazily-memoized back-propagation op list (see
    /// [`NoisyCircuit::reversed_inverted_ops`]).
    reversed: OnceLock<Vec<NoisyOp>>,
}

/// Equality is over circuit contents only — the memoized fingerprint cell is
/// an implementation detail and must not distinguish otherwise-equal
/// circuits.
impl PartialEq for NoisyCircuit {
    fn eq(&self, other: &NoisyCircuit) -> bool {
        self.num_qubits == other.num_qubits
            && self.ops == other.ops
            && self.readout == other.readout
            && self.p1 == other.p1
    }
}

impl NoisyCircuit {
    /// Attaches the noise model to a Clifford circuit.
    ///
    /// Every gate lowers to its Clifford form followed by the matching
    /// depolarizing channel (SWAPs use the model's 3×CX-equivalent error).
    ///
    /// # Errors
    ///
    /// Returns [`NotCliffordError`] if any rotation is off the Clifford grid.
    pub fn from_circuit(
        circuit: &Circuit,
        model: &NoiseModel,
    ) -> Result<NoisyCircuit, NotCliffordError> {
        assert_eq!(
            circuit.num_qubits(),
            model.num_qubits(),
            "model/circuit size mismatch"
        );
        let mut ops = Vec::with_capacity(circuit.len() * 2);
        for gate in circuit.gates() {
            let cliffords = gate.to_clifford().ok_or(NotCliffordError { gate: *gate })?;
            ops.extend(cliffords.into_iter().map(NoisyOp::Clifford));
            match *gate {
                Gate::Cx(a, b) => {
                    let p = model.p2(a, b);
                    if p > 0.0 {
                        ops.push(NoisyOp::Depol2(a, b, p));
                    }
                }
                Gate::Swap(a, b) => {
                    let p = model.swap_error(a, b);
                    if p > 0.0 {
                        ops.push(NoisyOp::Depol2(a, b, p));
                    }
                }
                g => {
                    let q = g.qubits()[0];
                    let p = model.p1(q);
                    if p > 0.0 {
                        ops.push(NoisyOp::Depol1(q, p));
                    }
                }
            }
        }
        Ok(NoisyCircuit {
            num_qubits: circuit.num_qubits(),
            ops,
            readout: (0..circuit.num_qubits())
                .map(|q| model.readout(q))
                .collect(),
            p1: (0..circuit.num_qubits()).map(|q| model.p1(q)).collect(),
            fingerprint: OnceLock::new(),
            reversed: OnceLock::new(),
        })
    }

    /// The instruction stream reversed with every Clifford gate replaced by
    /// its inverse — the walk order of Heisenberg back-propagation
    /// (`O ← g† O g` for each gate, last gate first; stochastic channels
    /// keep their place and parameters).
    ///
    /// Built once and memoized: the exact evaluator re-walks this list once
    /// per term (scalar path) or once per 64-term batch, for every genome
    /// of every GA round, so paying `CliffordGate::inverse` per gate per
    /// term would be pure waste.
    pub fn reversed_inverted_ops(&self) -> &[NoisyOp] {
        self.reversed.get_or_init(|| {
            self.ops
                .iter()
                .rev()
                .map(|op| match *op {
                    NoisyOp::Clifford(g) => NoisyOp::Clifford(g.inverse()),
                    other => other,
                })
                .collect()
        })
    }

    /// A cheap deterministic content fingerprint, computed once and
    /// memoized — used to pin term-preparation caches to the circuit they
    /// were derived from (see [`crate::TermCache`]). Distinct gate kinds on
    /// the same qubits hash differently.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
            let mut mix = |v: u64| {
                acc ^= v;
                acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
            };
            mix(self.num_qubits as u64);
            for op in &self.ops {
                match *op {
                    NoisyOp::Clifford(g) => {
                        mix(1);
                        mix(gate_code(g));
                        for q in g.qubits() {
                            mix(q as u64 + 1);
                        }
                    }
                    NoisyOp::Depol1(q, p) => {
                        mix(2);
                        mix(q as u64 + 1);
                        mix(p.to_bits());
                    }
                    NoisyOp::Depol2(a, b, p) => {
                        mix(3);
                        mix(a as u64 + 1);
                        mix(b as u64 + 1);
                        mix(p.to_bits());
                    }
                }
            }
            for q in 0..self.num_qubits {
                mix(self.readout[q].to_bits());
                mix(self.p1[q].to_bits());
            }
            acc
        })
    }

    /// The register size.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The instruction stream.
    pub fn ops(&self) -> &[NoisyOp] {
        &self.ops
    }

    /// The readout flip probability of `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn readout(&self, q: usize) -> f64 {
        self.readout[q]
    }

    /// Single-qubit gate error on `q` (used for measurement-basis-prep gate
    /// noise).
    pub fn gate_p1(&self, q: usize) -> f64 {
        self.p1[q]
    }

    /// The measurement-basis preparation ops for a Pauli term: for every
    /// support qubit, the gates rotating its basis to `Z` (`H` for `X`;
    /// `S†, H` for `Y`), each followed by its depolarizing slot (§4.2.3).
    pub fn basis_prep_ops(&self, term: &PauliString) -> Vec<NoisyOp> {
        let mut ops = Vec::new();
        for q in term.support() {
            let gates: &[CliffordGate] = match term.get(q) {
                Pauli::X => &[CliffordGate::H(q)],
                Pauli::Y => &[CliffordGate::Sdg(q), CliffordGate::H(q)],
                _ => &[],
            };
            for &g in gates {
                ops.push(NoisyOp::Clifford(g));
                if self.p1[q] > 0.0 {
                    ops.push(NoisyOp::Depol1(q, self.p1[q]));
                }
            }
        }
        ops
    }
}

/// A distinct code per [`CliffordGate`] variant for fingerprinting (qubit
/// indices alone cannot tell `H(0)` from `S(0)`).
fn gate_code(g: CliffordGate) -> u64 {
    use CliffordGate::*;
    match g {
        H(_) => 1,
        S(_) => 2,
        Sdg(_) => 3,
        X(_) => 4,
        Y(_) => 5,
        Z(_) => 6,
        SqrtX(_) => 7,
        SqrtXdg(_) => 8,
        SqrtY(_) => 9,
        SqrtYdg(_) => 10,
        Cx(..) => 11,
        Cz(..) => 12,
        Swap(..) => 13,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_gate_kinds_and_memoizes() {
        let model = NoiseModel::noiseless(2);
        let build = |g: Gate| {
            let mut c = Circuit::new(2);
            c.push(g);
            NoisyCircuit::from_circuit(&c, &model).unwrap()
        };
        // Same qubits, different gates ⇒ different fingerprints.
        let h = build(Gate::H(0));
        let s = build(Gate::S(0));
        assert_ne!(h.fingerprint(), s.fingerprint());
        assert_ne!(
            build(Gate::Cx(0, 1)).fingerprint(),
            build(Gate::Swap(0, 1)).fingerprint()
        );
        // Equal circuits agree, and memoization is stable.
        assert_eq!(h.fingerprint(), build(Gate::H(0)).fingerprint());
        assert_eq!(h.fingerprint(), h.fingerprint());
        // Equality ignores whether the fingerprint has been computed.
        assert_eq!(h, build(Gate::H(0)));
    }

    #[test]
    fn reversed_inverted_ops_reverse_and_invert() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::S(1));
        c.push(Gate::Cx(0, 1));
        let model = NoiseModel::uniform(2, 1e-3, 1e-2, 0.0);
        let nc = NoisyCircuit::from_circuit(&c, &model).unwrap();
        assert_eq!(
            nc.reversed_inverted_ops(),
            &[
                NoisyOp::Depol2(0, 1, 1e-2),
                NoisyOp::Clifford(CliffordGate::Cx(0, 1)),
                NoisyOp::Depol1(1, 1e-3),
                NoisyOp::Clifford(CliffordGate::Sdg(1)),
                NoisyOp::Depol1(0, 1e-3),
                NoisyOp::Clifford(CliffordGate::H(0)),
            ]
        );
        // Memoized: the second call hands back the same slice.
        assert_eq!(
            nc.reversed_inverted_ops().as_ptr(),
            nc.reversed_inverted_ops().as_ptr()
        );
    }

    #[test]
    fn noise_attaches_after_each_gate() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        let model = NoiseModel::uniform(2, 1e-3, 1e-2, 0.0);
        let nc = NoisyCircuit::from_circuit(&c, &model).unwrap();
        assert_eq!(
            nc.ops(),
            &[
                NoisyOp::Clifford(CliffordGate::H(0)),
                NoisyOp::Depol1(0, 1e-3),
                NoisyOp::Clifford(CliffordGate::Cx(0, 1)),
                NoisyOp::Depol2(0, 1, 1e-2),
            ]
        );
    }

    #[test]
    fn identity_slots_keep_noise() {
        let mut c = Circuit::new(1);
        c.push(Gate::Ry(0, 0.0));
        let model = NoiseModel::uniform(1, 1e-3, 0.0, 0.0);
        let nc = NoisyCircuit::from_circuit(&c, &model).unwrap();
        assert_eq!(nc.ops(), &[NoisyOp::Depol1(0, 1e-3)]);
    }

    #[test]
    fn noiseless_model_attaches_nothing() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        let nc = NoisyCircuit::from_circuit(&c, &NoiseModel::noiseless(2)).unwrap();
        assert_eq!(nc.ops().len(), 2);
    }

    #[test]
    fn swap_uses_triple_error() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(0, 1));
        let model = NoiseModel::uniform(2, 0.0, 0.01, 0.0);
        let nc = NoisyCircuit::from_circuit(&c, &model).unwrap();
        match nc.ops()[1] {
            NoisyOp::Depol2(0, 1, p) => assert!((p - 0.03).abs() < 1e-15),
            ref other => panic!("expected Depol2, got {other:?}"),
        }
    }

    #[test]
    fn non_clifford_is_rejected() {
        let mut c = Circuit::new(1);
        c.push(Gate::Ry(0, 0.3));
        let err = NoisyCircuit::from_circuit(&c, &NoiseModel::noiseless(1)).unwrap_err();
        assert!(err.to_string().contains("not on the Clifford grid"));
    }

    #[test]
    fn basis_prep_for_xyz() {
        let c = Circuit::new(3);
        let model = NoiseModel::uniform(3, 1e-3, 0.0, 0.0);
        let nc = NoisyCircuit::from_circuit(&c, &model).unwrap();
        let term: PauliString = "XYZ".parse().unwrap();
        let prep = nc.basis_prep_ops(&term);
        // X on q0: H + noise; Y on q1: Sdg + noise, H + noise; Z on q2: none.
        assert_eq!(
            prep,
            vec![
                NoisyOp::Clifford(CliffordGate::H(0)),
                NoisyOp::Depol1(0, 1e-3),
                NoisyOp::Clifford(CliffordGate::Sdg(1)),
                NoisyOp::Depol1(1, 1e-3),
                NoisyOp::Clifford(CliffordGate::H(1)),
                NoisyOp::Depol1(1, 1e-3),
            ]
        );
    }
}
