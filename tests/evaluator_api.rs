//! Property tests of the batched `LossEvaluator` API: the parallel and
//! cached evaluation paths must be bit-identical to sequential evaluation,
//! and the engine must stay deterministic with `parallel: true`.

use clapton::circuits::TransformationAnsatz;
use clapton::core::{
    CachedEvaluator, EvaluatorKind, ExecutableAnsatz, LossEvaluator, ParallelEvaluator,
    TransformLoss,
};
use clapton::ga::{FnEvaluator, MultiGa, MultiGaConfig};
use clapton::models::ising;
use clapton::noise::NoiseModel;
use proptest::prelude::*;

fn arb_population(genes: usize, max_size: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..4, genes), 1..max_size)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel population evaluation of the real Clapton objective is
    /// bit-identical to genome-at-a-time sequential evaluation.
    #[test]
    fn parallel_batch_is_bit_identical(
        population in arb_population(TransformationAnsatz::new(3).num_genes(), 20),
        threads in 1usize..6,
    ) {
        let h = ising(3, 0.5);
        let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let ansatz = TransformationAnsatz::new(3);
        let loss = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
        let sequential: Vec<f64> = population.iter().map(|g| loss.evaluate(g)).collect();
        let parallel = ParallelEvaluator::with_threads(&loss, threads);
        prop_assert_eq!(parallel.evaluate_population(&population), sequential);
    }

    /// Cached evaluation returns exactly the sequential losses, no matter
    /// how duplicated the population is, and never recomputes a genome.
    #[test]
    fn cached_batch_is_bit_identical(
        population in arb_population(TransformationAnsatz::new(3).num_genes(), 16),
        dup_rounds in 1usize..4,
    ) {
        let h = ising(3, 1.0);
        let model = NoiseModel::uniform(3, 2e-3, 1.5e-2, 3e-2);
        let exec = ExecutableAnsatz::untranspiled(3, &model);
        let ansatz = TransformationAnsatz::new(3);
        let loss = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
        let sequential: Vec<f64> = population.iter().map(|g| loss.evaluate(g)).collect();
        let cached = CachedEvaluator::new(&loss);
        for _ in 0..dup_rounds {
            prop_assert_eq!(cached.evaluate_population(&population), sequential.clone());
        }
        // The cache computed at most one loss per distinct genome.
        let mut unique = population.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(cached.stats().misses, unique.len() as u64);
    }

    /// The sampled (stim-style) backend is equally deterministic under the
    /// batched API: parallel + cached results replay exactly.
    #[test]
    fn sampled_backend_batches_deterministically(
        population in arb_population(TransformationAnsatz::new(2).num_genes(), 8),
    ) {
        let h = ising(2, 0.5);
        let model = NoiseModel::uniform(2, 5e-3, 2e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(2, &model);
        let ansatz = TransformationAnsatz::new(2);
        let loss = TransformLoss::new(
            &h,
            &exec,
            &ansatz,
            EvaluatorKind::Sampled { shots: 64, seed: 9 },
        );
        let sequential: Vec<f64> = population.iter().map(|g| loss.evaluate(g)).collect();
        let stacked = CachedEvaluator::new(ParallelEvaluator::with_threads(&loss, 3));
        prop_assert_eq!(stacked.evaluate_population(&population), sequential);
    }
}

#[test]
fn multiga_parallel_is_deterministic_and_matches_serial() {
    let fitness = FnEvaluator::new(|g: &[u8]| {
        g.iter()
            .enumerate()
            .map(|(i, &x)| (x as f64 - (i % 3) as f64).abs())
            .sum()
    });
    let mut cfg = MultiGaConfig::quick();
    cfg.parallel = true;
    let engine = MultiGa::new(14, 4, cfg);
    let a = engine.run(77, &fitness);
    let b = engine.run(77, &fitness);
    assert_eq!(a.best, b.best, "parallel runs with one seed must agree");
    assert_eq!(a.round_bests, b.round_bests);
    cfg.parallel = false;
    let serial = MultiGa::new(14, 4, cfg).run(77, &fitness);
    assert_eq!(
        a.best, serial.best,
        "parallel must match serial bit-for-bit"
    );
    assert_eq!(a.round_bests, serial.round_bests);
}

#[test]
fn clapton_run_reports_cache_traffic() {
    let h = ising(3, 0.5);
    let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
    let exec = ExecutableAnsatz::untranspiled(3, &model);
    let result = clapton::core::run_clapton(&h, &exec, &clapton::core::ClaptonConfig::quick(4));
    assert!(result.unique_evaluations > 0);
    assert!(
        result.cache_hits > 0,
        "mix-and-restart rounds must re-submit known genomes"
    );
}
