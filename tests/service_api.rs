//! The acceptance contract of the `JobSpec` front door: a spec compiled
//! from a `Pipeline`-built run, serialized to JSON, re-parsed, and submitted
//! through `ClaptonService` produces a **bit-identical** report to the
//! legacy `Pipeline::run` path — for all four methods (CAFQA, nCAFQA,
//! Clapton, VQE refinement) in quick mode.

use clapton::core::{run_ncafqa, EvaluatorKind, ExecutableAnsatz};
use clapton::devices::FakeBackend;
use clapton::models::{ising, xxz};
use clapton::noise::NoiseModel;
use clapton::pipeline::Pipeline;
use clapton::service::{ClaptonService, JobSpec, MethodSpec};

/// JSON round trip: the wire format must not change the spec.
fn reparse(spec: &JobSpec) -> JobSpec {
    let json = serde_json::to_string_pretty(spec).unwrap();
    serde_json::from_str(&json).unwrap()
}

#[test]
fn spec_from_pipeline_reproduces_the_report_bit_identically() {
    // CAFQA + Clapton + VQE refinement from both starts, uniform noise.
    let pipeline = Pipeline::new(ising(4, 0.5))
        .with_uniform_noise(1e-3, 1e-2, 2e-2)
        .quick(7)
        .with_vqe(10);
    let spec = reparse(&pipeline.to_spec());
    let legacy = pipeline.run();
    let report = ClaptonService::new().run(spec).unwrap();

    assert_eq!(report.e0, legacy.e0);
    assert_eq!(report.cafqa.as_ref(), Some(&legacy.cafqa));
    assert_eq!(report.clapton.as_ref(), Some(&legacy.clapton));
    assert_eq!(
        report.cafqa_initial_energy,
        Some(legacy.cafqa_initial_energy)
    );
    assert_eq!(
        report.clapton_initial_energy,
        Some(legacy.clapton_initial_energy)
    );
    assert_eq!(report.eta_initial, Some(legacy.eta_initial));
    assert_eq!(report.clapton_vqe, legacy.clapton_vqe);
    assert_eq!(report.cafqa_vqe, legacy.cafqa_vqe);
}

#[test]
fn spec_from_pipeline_on_backend_reproduces_the_report() {
    // The transpiled path: the spec compiles the registry backend by name.
    let pipeline = Pipeline::new(xxz(5, 0.5))
        .on_backend(FakeBackend::nairobi())
        .quick(5);
    let spec = reparse(&pipeline.to_spec());
    assert!(
        serde_json::to_string(&spec).unwrap().contains("nairobi"),
        "registry backends compile to their name"
    );
    let legacy = pipeline.run();
    let report = ClaptonService::new().run(spec).unwrap();
    assert_eq!(report.clapton.as_ref(), Some(&legacy.clapton));
    assert_eq!(report.cafqa.as_ref(), Some(&legacy.cafqa));
    assert_eq!(
        report.clapton_initial_energy,
        Some(legacy.clapton_initial_energy)
    );
}

#[test]
fn spec_from_pipeline_with_snapshot_backend_reproduces_the_report() {
    // A hardware variant has no registry name: the spec inlines the full
    // snapshot and still reproduces the run after a JSON round trip.
    let hw = FakeBackend::nairobi().hardware_variant(3);
    let pipeline = Pipeline::new(ising(4, 0.25)).on_backend(hw).quick(2);
    let spec = reparse(&pipeline.to_spec());
    let legacy = pipeline.run();
    let report = ClaptonService::new().run(spec).unwrap();
    assert_eq!(report.clapton.as_ref(), Some(&legacy.clapton));
    assert_eq!(
        report.cafqa_initial_energy,
        Some(legacy.cafqa_initial_energy)
    );
}

#[test]
fn ncafqa_through_the_front_door_matches_the_free_function() {
    // The fourth method has no Pipeline equivalent; its legacy path is the
    // free function. Same seed, same engine, same executable — bit-identical.
    let h = ising(4, 0.5);
    let model = NoiseModel::uniform(4, 1e-3, 1e-2, 2e-2);
    let exec = ExecutableAnsatz::untranspiled(4, &model);
    let engine = clapton::ga::MultiGaConfig::quick();
    let legacy = run_ncafqa(&h, &exec, &engine, EvaluatorKind::Exact, 7);

    let pipeline = Pipeline::new(h)
        .with_uniform_noise(1e-3, 1e-2, 2e-2)
        .quick(7);
    let mut spec = pipeline.to_spec();
    spec.methods = vec![MethodSpec::Ncafqa];
    let report = ClaptonService::new().run(reparse(&spec)).unwrap();
    assert_eq!(report.ncafqa.as_ref(), Some(&legacy));
    assert!(report.cafqa.is_none() && report.clapton.is_none());
}
