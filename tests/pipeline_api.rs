//! Tests of the high-level [`clapton::pipeline::Pipeline`] builder.

use clapton::devices::FakeBackend;
use clapton::models::{ising, xxz};
use clapton::pipeline::Pipeline;

#[test]
fn pipeline_with_uniform_noise_produces_consistent_report() {
    let report = Pipeline::new(ising(4, 0.5))
        .with_uniform_noise(1e-3, 1e-2, 2e-2)
        .quick(3)
        .run();
    // The report's energies respect the exact ground bound (device noise can
    // only push energies up for this diagonal-dominant problem).
    assert!(report.cafqa_initial_energy >= report.e0 - 1e-6);
    assert!(report.clapton_initial_energy >= report.e0 - 1e-6);
    // η is the ratio of the two gaps.
    let expected_eta =
        (report.e0 - report.cafqa_initial_energy) / (report.e0 - report.clapton_initial_energy);
    assert!((report.eta_initial - expected_eta).abs() < 1e-12);
    assert!(report.clapton_vqe.is_none());
}

#[test]
fn pipeline_on_backend_transpiles_and_runs() {
    let report = Pipeline::new(xxz(5, 0.5))
        .on_backend(FakeBackend::nairobi())
        .quick(5)
        .run();
    assert!(report.clapton_initial_energy.is_finite());
    // Transformation preserved the problem.
    assert_eq!(
        report.clapton.transformation.transformed.num_terms(),
        xxz(5, 0.5).num_terms()
    );
}

#[test]
fn pipeline_with_vqe_attaches_traces() {
    let report = Pipeline::new(ising(3, 0.25))
        .with_uniform_noise(5e-4, 5e-3, 1e-2)
        .quick(9)
        .with_vqe(40)
        .run();
    let clapton_trace = report.clapton_vqe.expect("vqe requested");
    let cafqa_trace = report.cafqa_vqe.expect("vqe requested");
    // Initial energies of the traces match the report's device energies.
    assert!((clapton_trace.initial_energy - report.clapton_initial_energy).abs() < 1e-9);
    assert!((cafqa_trace.initial_energy - report.cafqa_initial_energy).abs() < 1e-9);
    // VQE does not make things (much) worse.
    assert!(clapton_trace.final_energy <= clapton_trace.initial_energy + 0.2);
}

#[test]
fn noiseless_pipeline_defaults_to_ideal_model() {
    let report = Pipeline::new(ising(3, 1.0)).quick(1).run();
    // Without noise, device evaluation equals the noiseless search loss.
    assert!((report.cafqa_initial_energy - report.cafqa.energy_noiseless).abs() < 1e-9);
}
