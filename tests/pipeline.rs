//! End-to-end pipeline tests: the full application → transformation → device
//! flow on real benchmark instances and fake backends.

use clapton::core::{
    run_cafqa, run_clapton, run_ncafqa, ClaptonConfig, EvaluatorKind, ExecutableAnsatz,
    LossFunction,
};
use clapton::devices::FakeBackend;
use clapton::ga::MultiGaConfig;
use clapton::models::{benchmark_suite, ising, physics_suite, xxz};
use clapton::sim::{ground_energy, DeviceEvaluator};
use clapton::vqe::{run_vqe, VqeConfig};

fn device_energy(exec: &ExecutableAnsatz, h: &clapton::pauli::PauliSum, theta: &[f64]) -> f64 {
    let circuit = exec.circuit(theta);
    DeviceEvaluator::run(&circuit, exec.noise_model()).energy(&exec.map_hamiltonian(h))
}

#[test]
fn clapton_improves_over_cafqa_on_nairobi_physics_suite() {
    // The headline claim at reduced scale: across the 7-qubit physics
    // suite on nairobi, Clapton's initial device energy beats CAFQA's on
    // average (geometric-mean η > 1).
    let backend = FakeBackend::nairobi();
    let mut etas = Vec::new();
    for bench in physics_suite(7) {
        let h = &bench.hamiltonian;
        let exec =
            ExecutableAnsatz::on_device(7, backend.coupling_map(), &backend.noise_model()).unwrap();
        let e0 = ground_energy(h);
        let cafqa = run_cafqa(h, &exec, &MultiGaConfig::quick(), 0);
        let e_cafqa = device_energy(&exec, h, &cafqa.theta);
        let clapton = run_clapton(h, &exec, &ClaptonConfig::quick(1));
        let zeros = vec![0.0; exec.ansatz().num_parameters()];
        let e_clapton = device_energy(&exec, &clapton.transformation.transformed, &zeros);
        etas.push(clapton::core::relative_improvement(e0, e_cafqa, e_clapton));
    }
    let geo = clapton::core::geometric_mean(&etas);
    assert!(geo > 1.0, "geometric-mean eta {geo} (etas {etas:?})");
}

#[test]
fn transformed_problems_keep_their_spectrum_across_the_suite() {
    for bench in benchmark_suite(10).into_iter().take(4) {
        let h = &bench.hamiltonian;
        let model = clapton::noise::NoiseModel::uniform(10, 1e-3, 1e-2, 2e-2);
        let exec = ExecutableAnsatz::untranspiled(10, &model);
        let result = run_clapton(h, &exec, &ClaptonConfig::quick(3));
        let e0 = ground_energy(h);
        let e0_hat = ground_energy(&result.transformation.transformed);
        assert!(
            (e0 - e0_hat).abs() < 1e-7,
            "{}: E0 {e0} vs transformed {e0_hat}",
            bench.name
        );
        assert_eq!(
            result.transformation.transformed.num_terms(),
            h.num_terms(),
            "{}: term structure preserved",
            bench.name
        );
    }
}

#[test]
fn ncafqa_beats_cafqa_under_noise_on_average() {
    // The paper's intermediate claim: modeling noise helps even without the
    // transformation (nCAFQA ≥ CAFQA at the initial point, most of the time).
    let n = 5;
    let mut model = clapton::noise::NoiseModel::uniform(n, 3e-3, 2.5e-2, 4e-2);
    model.set_t1_uniform(60e-6);
    let exec = ExecutableAnsatz::untranspiled(n, &model);
    let mut wins = 0;
    let mut total = 0;
    for (i, bench) in physics_suite(n).into_iter().enumerate() {
        let h = &bench.hamiltonian;
        let cafqa = run_cafqa(h, &exec, &MultiGaConfig::quick(), i as u64);
        let ncafqa = run_ncafqa(
            h,
            &exec,
            &MultiGaConfig::quick(),
            EvaluatorKind::Exact,
            i as u64,
        );
        let e_c = device_energy(&exec, h, &cafqa.theta);
        let e_n = device_energy(&exec, h, &ncafqa.theta);
        total += 1;
        if e_n <= e_c + 1e-9 {
            wins += 1;
        }
    }
    assert!(
        wins * 2 >= total,
        "nCAFQA won only {wins}/{total} benchmarks"
    );
}

#[test]
fn full_vqe_pipeline_converges_from_clapton_start() {
    let n = 4;
    let h = xxz(n, 0.5);
    let mut model = clapton::noise::NoiseModel::uniform(n, 5e-4, 5e-3, 1e-2);
    model.set_t1_uniform(150e-6);
    let exec = ExecutableAnsatz::untranspiled(n, &model);
    let clapton = run_clapton(&h, &exec, &ClaptonConfig::quick(9));
    let zeros = vec![0.0; exec.ansatz().num_parameters()];
    let trace = run_vqe(
        &clapton.transformation.transformed,
        &exec,
        &zeros,
        &VqeConfig::new(80),
    );
    // VQE must not regress from the Clapton start...
    assert!(trace.final_energy <= trace.initial_energy + 0.1);
    // ...and must respect the variational bound up to noise bias.
    let e0 = ground_energy(&h);
    assert!(trace.final_energy >= e0 - 1.0);
}

#[test]
fn loss_total_decomposes_and_orders_methods_consistently() {
    let n = 4;
    let h = ising(n, 1.0);
    let model = clapton::noise::NoiseModel::uniform(n, 2e-3, 1.5e-2, 3e-2);
    let exec = ExecutableAnsatz::untranspiled(n, &model);
    let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
    let clapton = run_clapton(&h, &exec, &ClaptonConfig::quick(17));
    // Reported pieces must reproduce independent recomputation.
    let recomputed_ln = loss.loss_n(&clapton.transformation.transformed);
    let recomputed_l0 = loss.loss_0(&clapton.transformation.transformed);
    assert!((recomputed_ln - clapton.loss_n).abs() < 1e-9);
    assert!((recomputed_l0 - clapton.loss_0).abs() < 1e-9);
    assert!((clapton.loss - (recomputed_ln + recomputed_l0)).abs() < 1e-9);
}

#[test]
fn transpiled_and_untranspiled_agree_when_topology_is_a_ring() {
    // On a native ring there is nothing to route: device execution on the
    // ring coupling equals the logical circuit semantics.
    let n = 5;
    let h = xxz(n, 1.0);
    let coupling = clapton::circuits::CouplingMap::ring(n);
    let model = clapton::noise::NoiseModel::uniform(n, 1e-3, 1e-2, 2e-2);
    let exec_device = ExecutableAnsatz::on_device(n, &coupling, &model).unwrap();
    let exec_plain = ExecutableAnsatz::untranspiled(n, &model);
    // Same candidate transformation on both: losses agree (up to the chain
    // relabeling, which maps the problem consistently).
    let loss_device = LossFunction::new(&exec_device, EvaluatorKind::Exact);
    let loss_plain = LossFunction::new(&exec_plain, EvaluatorKind::Exact);
    let ring_has_no_swaps = exec_device
        .circuit_at_zero()
        .gates()
        .iter()
        .all(|g| !matches!(g, clapton::circuits::Gate::Swap(..)));
    assert!(ring_has_no_swaps, "ring hosts the circular ansatz natively");
    assert!(
        (loss_device.loss_n(&h) - loss_plain.loss_n(&h)).abs() < 1e-9,
        "ring transpilation must not change LN"
    );
}
