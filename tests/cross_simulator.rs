//! Cross-simulator consistency: the same circuits and noise must produce the
//! same numbers across all four evaluation engines —
//!
//! 1. Aaronson–Gottesman stabilizer tableau,
//! 2. dense statevector,
//! 3. exact Clifford-noise back-propagation,
//! 4. dense density matrix (+ Pauli-frame sampler statistically).
//!
//! These agreements are what let Clapton optimize against the cheap model
//! and be evaluated against the expensive one.

use clapton::circuits::{Circuit, Gate, HardwareEfficientAnsatz};
use clapton::noise::{ExactEvaluator, FrameSampler, NoiseModel, NoisyCircuit};
use clapton::pauli::{PauliString, PauliSum};
use clapton::sim::{DeviceEvaluator, StateVector};
use clapton::stabilizer::StabilizerState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_clifford_circuit(n: usize, len: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..len {
        match rng.gen_range(0..7) {
            0 => c.push(Gate::H(rng.gen_range(0..n))),
            1 => c.push(Gate::S(rng.gen_range(0..n))),
            2 => c.push(Gate::Sdg(rng.gen_range(0..n))),
            3 => c.push(Gate::Ry(
                rng.gen_range(0..n),
                f64::from(rng.gen_range(0..4u8)) * std::f64::consts::FRAC_PI_2,
            )),
            4 => c.push(Gate::Rz(
                rng.gen_range(0..n),
                f64::from(rng.gen_range(0..4u8)) * std::f64::consts::FRAC_PI_2,
            )),
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                if rng.gen_bool(0.8) {
                    c.push(Gate::Cx(a, b));
                } else {
                    c.push(Gate::Swap(a, b));
                }
            }
        }
    }
    c
}

#[test]
fn four_engines_agree_on_noiseless_clifford_circuits() {
    let mut rng = StdRng::seed_from_u64(1001);
    for _ in 0..15 {
        let n = rng.gen_range(2..6);
        let circuit = random_clifford_circuit(n, 30, &mut rng);
        let sv = StateVector::from_circuit(&circuit);
        let mut stab = StabilizerState::new(n);
        stab.apply_all(&circuit.to_clifford().unwrap());
        let model = NoiseModel::noiseless(n);
        let noisy = NoisyCircuit::from_circuit(&circuit, &model).unwrap();
        let exact = ExactEvaluator::new(&noisy);
        let device = DeviceEvaluator::run(&circuit, &model);
        for _ in 0..12 {
            let p = PauliString::random(n, &mut rng);
            let reference = sv.expectation(&p);
            assert!(
                (stab.expectation(&p) - reference).abs() < 1e-10,
                "stabilizer vs statevector on {p}"
            );
            assert!(
                (exact.noiseless_expectation(&p) - reference).abs() < 1e-10,
                "backprop vs statevector on {p}"
            );
            assert!(
                (device.state_expectation(&p) - reference).abs() < 1e-9,
                "density vs statevector on {p}"
            );
        }
    }
}

#[test]
fn exact_evaluator_matches_density_matrix_under_pauli_noise() {
    let mut rng = StdRng::seed_from_u64(2002);
    for _ in 0..10 {
        let n = rng.gen_range(2..5);
        let circuit = random_clifford_circuit(n, 20, &mut rng);
        let model = NoiseModel::uniform(
            n,
            rng.gen_range(1e-4..5e-3),
            rng.gen_range(1e-3..2e-2),
            rng.gen_range(1e-3..5e-2),
        );
        let noisy = NoisyCircuit::from_circuit(&circuit, &model).unwrap();
        let exact = ExactEvaluator::new(&noisy);
        let device = DeviceEvaluator::run(&circuit, &model);
        for _ in 0..10 {
            let p = PauliString::random(n, &mut rng);
            let a = exact.expectation(&p);
            let b = device.expectation(&p);
            assert!((a - b).abs() < 1e-9, "term {p}: exact {a} vs density {b}");
        }
    }
}

#[test]
fn frame_sampler_mean_matches_exact_on_the_ansatz() {
    let mut rng = StdRng::seed_from_u64(3003);
    let n = 4;
    let ansatz = HardwareEfficientAnsatz::new(n);
    let circuit = ansatz.circuit_at_zero();
    let model = NoiseModel::uniform(n, 5e-3, 3e-2, 3e-2);
    let noisy = NoisyCircuit::from_circuit(&circuit, &model).unwrap();
    let exact = ExactEvaluator::new(&noisy);
    let sampler = FrameSampler::new(&noisy);
    let h = PauliSum::from_terms(
        n,
        vec![
            (1.0, "ZZII".parse().unwrap()),
            (0.5, "IZZI".parse().unwrap()),
            (-0.7, "ZIIZ".parse().unwrap()),
        ],
    );
    let sampled = sampler.energy(&h, 30_000, &mut rng);
    let reference = exact.energy(&h);
    assert!(
        (sampled - reference).abs() < 0.05,
        "sampled {sampled} vs exact {reference}"
    );
}

#[test]
fn relaxation_breaks_clifford_model_in_the_expected_direction() {
    // With T1 decay, the density evaluation of an excited-state-heavy
    // circuit must be *worse* (higher energy for a Hamiltonian whose ground
    // state is |1…1⟩) than the Clifford model predicts — the gap that
    // motivates Clapton's transformation toward |0…0⟩ (§4.2.1).
    let n = 3;
    let mut circuit = Circuit::new(n);
    for q in 0..n {
        circuit.push(Gate::Ry(q, std::f64::consts::PI)); // |111⟩
    }
    // H = Σ Z_i has energy -3 on |111⟩.
    let h = PauliSum::from_terms(
        n,
        (0..n).map(|q| (1.0, PauliString::single(n, q, clapton::pauli::Pauli::Z))),
    );
    let mut model = NoiseModel::uniform(n, 1e-3, 0.0, 1e-2);
    model.set_t1_uniform(30e-6);
    let noisy = NoisyCircuit::from_circuit(&circuit, &model).unwrap();
    let clifford_prediction = ExactEvaluator::new(&noisy).energy(&h);
    let device = DeviceEvaluator::run(&circuit, &model).energy(&h);
    assert!(
        device > clifford_prediction + 0.01,
        "relaxation must push energy up: device {device} vs clifford {clifford_prediction}"
    );
    // Whereas the all-zeros circuit shows no such gap (|0⟩ does not decay).
    let zeros = Circuit::new(n);
    let noisy0 = NoisyCircuit::from_circuit(&zeros, &model).unwrap();
    let clifford0 = ExactEvaluator::new(&noisy0).energy(&h);
    let device0 = DeviceEvaluator::run(&zeros, &model).energy(&h);
    assert!(
        (device0 - clifford0).abs() < 1e-9,
        "|0…0⟩ is immune to relaxation: {device0} vs {clifford0}"
    );
}
