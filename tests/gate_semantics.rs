//! Ground-truth validation of the Clifford conjugation rules against dense
//! complex matrices: for every gate `g` and every one-/two-qubit Pauli `P`,
//! the rule `g P g† = s·P'` produced by `CliffordGate::conjugate` must match
//! literal matrix arithmetic. This pins down the sign conventions the whole
//! stack (transformation, evaluators, stabilizer states) relies on.

use clapton::pauli::{Pauli, PauliString};
use clapton::sim::Complex64;
use clapton::stabilizer::CliffordGate;

type Mat = Vec<Vec<Complex64>>;

fn zeros(n: usize) -> Mat {
    vec![vec![Complex64::ZERO; n]; n]
}

fn matmul(a: &Mat, b: &Mat) -> Mat {
    let n = a.len();
    let mut out = zeros(n);
    for (i, row) in out.iter_mut().enumerate() {
        for (k, &aik) in a[i].iter().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell += aik * b[k][j];
            }
        }
    }
    out
}

fn dagger(a: &Mat) -> Mat {
    let n = a.len();
    let mut out = zeros(n);
    for i in 0..n {
        for j in 0..n {
            out[i][j] = a[j][i].conj();
        }
    }
    out
}

fn kron(a: &Mat, b: &Mat) -> Mat {
    let (na, nb) = (a.len(), b.len());
    let mut out = zeros(na * nb);
    for i in 0..na {
        for j in 0..na {
            for k in 0..nb {
                for l in 0..nb {
                    out[i * nb + k][j * nb + l] = a[i][j] * b[k][l];
                }
            }
        }
    }
    out
}

fn approx_eq(a: &Mat, b: &Mat) -> bool {
    a.iter()
        .zip(b)
        .all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| (*x - *y).abs() < 1e-12))
}

fn scale(a: &Mat, s: f64) -> Mat {
    a.iter()
        .map(|r| r.iter().map(|x| x.scale(s)).collect())
        .collect()
}

fn c(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

fn pauli_matrix(p: Pauli) -> Mat {
    match p {
        Pauli::I => vec![
            vec![c(1.0, 0.0), c(0.0, 0.0)],
            vec![c(0.0, 0.0), c(1.0, 0.0)],
        ],
        Pauli::X => vec![
            vec![c(0.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(0.0, 0.0)],
        ],
        Pauli::Y => vec![
            vec![c(0.0, 0.0), c(0.0, -1.0)],
            vec![c(0.0, 1.0), c(0.0, 0.0)],
        ],
        Pauli::Z => vec![
            vec![c(1.0, 0.0), c(0.0, 0.0)],
            vec![c(0.0, 0.0), c(-1.0, 0.0)],
        ],
    }
}

/// Dense matrix of a Pauli string on `n` qubits. Qubit 0 is the FIRST kron
/// factor; the basis-index convention of the dense simulators puts qubit 0
/// in the least-significant bit, so factor order is reversed here.
fn string_matrix(p: &PauliString) -> Mat {
    let n = p.num_qubits();
    let mut m = pauli_matrix(p.get(n - 1));
    for q in (0..n - 1).rev() {
        m = kron(&m, &pauli_matrix(p.get(q)));
    }
    m
}

/// Dense matrix of a single-qubit gate matrix placed on qubit `q` of `n`.
fn embed_1q(u: &Mat, q: usize, n: usize) -> Mat {
    let id = pauli_matrix(Pauli::I);
    let mut m = if q == n - 1 { u.clone() } else { id.clone() };
    for k in (0..n - 1).rev() {
        let factor = if k == q { u } else { &id };
        m = kron(&m, factor);
    }
    m
}

// Matrices are built column-by-column from permuted basis indices; index
// loops are the clearest way to write that.
#[allow(clippy::needless_range_loop)]
fn gate_matrix(g: CliffordGate, n: usize) -> Mat {
    use CliffordGate::*;
    let s2 = std::f64::consts::FRAC_1_SQRT_2;
    let mat_1q: Option<(usize, Mat)> = match g {
        H(q) => Some((
            q,
            vec![vec![c(s2, 0.0), c(s2, 0.0)], vec![c(s2, 0.0), c(-s2, 0.0)]],
        )),
        S(q) => Some((
            q,
            vec![
                vec![c(1.0, 0.0), c(0.0, 0.0)],
                vec![c(0.0, 0.0), c(0.0, 1.0)],
            ],
        )),
        Sdg(q) => Some((
            q,
            vec![
                vec![c(1.0, 0.0), c(0.0, 0.0)],
                vec![c(0.0, 0.0), c(0.0, -1.0)],
            ],
        )),
        X(q) => Some((q, pauli_matrix(Pauli::X))),
        Y(q) => Some((q, pauli_matrix(Pauli::Y))),
        Z(q) => Some((q, pauli_matrix(Pauli::Z))),
        SqrtX(q) => Some((
            q,
            // Rx(π/2) = exp(-iπX/4) = (I - iX)/√2.
            vec![vec![c(s2, 0.0), c(0.0, -s2)], vec![c(0.0, -s2), c(s2, 0.0)]],
        )),
        SqrtXdg(q) => Some((
            q,
            vec![vec![c(s2, 0.0), c(0.0, s2)], vec![c(0.0, s2), c(s2, 0.0)]],
        )),
        SqrtY(q) => Some((
            q,
            // Ry(π/2) = (I - iY)/√2 = [[s2, -s2], [s2, s2]].
            vec![vec![c(s2, 0.0), c(-s2, 0.0)], vec![c(s2, 0.0), c(s2, 0.0)]],
        )),
        SqrtYdg(q) => Some((
            q,
            vec![vec![c(s2, 0.0), c(s2, 0.0)], vec![c(-s2, 0.0), c(s2, 0.0)]],
        )),
        _ => None,
    };
    if let Some((q, u)) = mat_1q {
        return embed_1q(&u, q, n);
    }
    // Two-qubit gates on n = 2, built index-wise with qubit 0 = LSB.
    let dim = 1 << n;
    let mut m = zeros(dim);
    match g {
        CliffordGate::Cx(ctrl, tgt) => {
            for i in 0..dim {
                let j = if i >> ctrl & 1 == 1 {
                    i ^ (1 << tgt)
                } else {
                    i
                };
                m[j][i] = Complex64::ONE;
            }
        }
        CliffordGate::Cz(a, b) => {
            for (i, row) in m.iter_mut().enumerate() {
                let sign = if i >> a & 1 == 1 && i >> b & 1 == 1 {
                    -1.0
                } else {
                    1.0
                };
                row[i] = Complex64::real(sign);
            }
        }
        CliffordGate::Swap(a, b) => {
            for i in 0..dim {
                let (ba, bb) = (i >> a & 1, i >> b & 1);
                let j = if ba != bb { i ^ (1 << a) ^ (1 << b) } else { i };
                m[j][i] = Complex64::ONE;
            }
        }
        other => unreachable!("{other} handled above"),
    }
    m
}

fn all_strings(n: usize) -> Vec<PauliString> {
    let mut out = Vec::new();
    let paulis = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];
    if n == 1 {
        for p in paulis {
            out.push(PauliString::from_sparse(1, [(0, p)]));
        }
    } else {
        for a in paulis {
            for b in paulis {
                out.push(PauliString::from_sparse(2, [(0, a), (1, b)]));
            }
        }
    }
    out
}

fn verify_gate(g: CliffordGate, n: usize) {
    let gm = gate_matrix(g, n);
    let gm_dag = dagger(&gm);
    // Unitarity sanity.
    let dim = 1 << n;
    let mut id = zeros(dim);
    for (i, row) in id.iter_mut().enumerate() {
        row[i] = Complex64::ONE;
    }
    assert!(approx_eq(&matmul(&gm, &gm_dag), &id), "{g} not unitary");
    for p in all_strings(n) {
        let mut image = p.clone();
        let flip = g.conjugate(&mut image);
        let sign = if flip { -1.0 } else { 1.0 };
        let lhs = matmul(&gm, &matmul(&string_matrix(&p), &gm_dag));
        let rhs = scale(&string_matrix(&image), sign);
        assert!(
            approx_eq(&lhs, &rhs),
            "{g}: g·{p}·g† != {}{image}",
            if flip { "-" } else { "+" }
        );
    }
}

#[test]
fn single_qubit_gates_match_dense_matrices() {
    use CliffordGate::*;
    for g in [
        H(0),
        S(0),
        Sdg(0),
        X(0),
        Y(0),
        Z(0),
        SqrtX(0),
        SqrtXdg(0),
        SqrtY(0),
        SqrtYdg(0),
    ] {
        verify_gate(g, 1);
    }
}

#[test]
fn single_qubit_gates_embedded_on_second_qubit() {
    use CliffordGate::*;
    for g in [H(1), S(1), SqrtX(1), SqrtY(1), Y(1)] {
        verify_gate(g, 2);
    }
}

#[test]
fn two_qubit_gates_match_dense_matrices() {
    use CliffordGate::*;
    for g in [Cx(0, 1), Cx(1, 0), Cz(0, 1), Cz(1, 0), Swap(0, 1)] {
        verify_gate(g, 2);
    }
}

#[test]
fn quarter_turn_rotations_match_gate_library() {
    // Ry(k·π/2)/Rz(k·π/2) built by the circuit IR lower to Clifford gates
    // whose dense matrices equal the rotation matrices up to global phase.
    use clapton::circuits::Gate;
    for k in 1..4u8 {
        let angle = k as f64 * std::f64::consts::FRAC_PI_2;
        for builder in [Gate::Ry as fn(usize, f64) -> Gate, Gate::Rz] {
            let gate = builder(0, angle);
            let cliffords = gate.to_clifford().expect("Clifford angle");
            assert_eq!(cliffords.len(), 1);
            // Contract check on a non-trivial probe state |+⟩:
            // ⟨gψ|P|gψ⟩ = ⟨ψ|g†Pg|ψ⟩ = f·⟨ψ|Q|ψ⟩ where (f, Q) comes from
            // conjugating P with the *inverse* Clifford gate.
            for p in all_strings(1) {
                let mut probe = clapton::sim::StateVector::new(1);
                probe.apply_gate(Gate::H(0));
                let mut evolved = probe.clone();
                evolved.apply_gate(gate);
                let lhs = evolved.expectation(&p);
                let mut img = p.clone();
                let flipped = cliffords[0].inverse().conjugate(&mut img);
                let rhs = if flipped { -1.0 } else { 1.0 } * probe.expectation(&img);
                assert!((lhs - rhs).abs() < 1e-10, "{gate:?} on {p}: {lhs} vs {rhs}");
            }
        }
    }
}
