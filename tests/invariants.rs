//! Property-based invariants of the core machinery on randomized inputs.

use clapton::circuits::TransformationAnsatz;
use clapton::core::{transform_hamiltonian, EvaluatorKind, ExecutableAnsatz, LossFunction};
use clapton::noise::NoiseModel;
use clapton::pauli::{Pauli, PauliString, PauliSum};
use clapton::sim::ground_energy;
use clapton::stabilizer::{CliffordGate, CliffordMap};
use proptest::prelude::*;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z),
    ]
}

fn arb_hamiltonian(n: usize, max_terms: usize) -> impl Strategy<Value = PauliSum> {
    proptest::collection::vec(
        (-2.0..2.0f64, proptest::collection::vec(arb_pauli(), n)),
        1..max_terms,
    )
    .prop_map(move |terms| {
        PauliSum::from_terms(
            n,
            terms
                .into_iter()
                .map(|(c, ps)| (c, PauliString::from_sparse(n, ps.into_iter().enumerate()))),
        )
    })
}

fn arb_genome(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unitary equivalence: every transformation preserves the spectrum.
    #[test]
    fn transformation_preserves_ground_energy(
        h in arb_hamiltonian(4, 8),
        genome in arb_genome(TransformationAnsatz::new(4).num_genes()),
    ) {
        let ansatz = TransformationAnsatz::new(4);
        let transformed = transform_hamiltonian(&h, &ansatz.gates(&genome));
        let e0 = ground_energy(&h);
        let e0_hat = ground_energy(&transformed);
        prop_assert!((e0 - e0_hat).abs() < 1e-7, "{e0} vs {e0_hat}");
    }

    /// Transformations are involutive through the inverse map: applying the
    /// anticonjugation and then the conjugation map restores the problem.
    #[test]
    fn transformation_round_trips(
        h in arb_hamiltonian(4, 8),
        genome in arb_genome(TransformationAnsatz::new(4).num_genes()),
    ) {
        let ansatz = TransformationAnsatz::new(4);
        let gates = ansatz.gates(&genome);
        let forward = transform_hamiltonian(&h, &gates);
        // Conjugation (not anticonjugation) undoes the transform.
        let map = CliffordMap::conjugation(4, &gates);
        let mut back = forward.map_terms(|p| map.conjugate(p));
        let mut original = h.clone();
        back.simplify();
        original.simplify();
        prop_assert_eq!(back, original);
    }

    /// LN is bounded by the 1-norm and coincides with L0 when noiseless.
    #[test]
    fn loss_bounds(
        h in arb_hamiltonian(4, 8),
        p1 in 0.0..5e-3f64,
        p2 in 0.0..2e-2f64,
        ro in 0.0..5e-2f64,
    ) {
        let model = NoiseModel::uniform(4, p1, p2, ro);
        let exec = ExecutableAnsatz::untranspiled(4, &model);
        let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
        let ln = loss.loss_n(&h);
        prop_assert!(ln.abs() <= h.one_norm() + 1e-9);
        let noiseless_exec = ExecutableAnsatz::untranspiled(4, &NoiseModel::noiseless(4));
        let noiseless_loss = LossFunction::new(&noiseless_exec, EvaluatorKind::Exact);
        prop_assert!((noiseless_loss.loss_n(&h) - noiseless_loss.loss_0(&h)).abs() < 1e-9);
    }

    /// Damping never increases the magnitude of a term's expectation.
    #[test]
    fn noise_is_contractive(
        h in arb_hamiltonian(3, 6),
        p1 in 0.0..5e-3f64,
        ro in 0.0..5e-2f64,
    ) {
        let noisy_model = NoiseModel::uniform(3, p1, 10.0 * p1, ro);
        let clean_model = NoiseModel::noiseless(3);
        let noisy_exec = ExecutableAnsatz::untranspiled(3, &noisy_model);
        let clean_exec = ExecutableAnsatz::untranspiled(3, &clean_model);
        let noisy_loss = LossFunction::new(&noisy_exec, EvaluatorKind::Exact);
        let clean_loss = LossFunction::new(&clean_exec, EvaluatorKind::Exact);
        for (c, p) in h.iter() {
            let single = PauliSum::from_terms(3, vec![(c, p.clone())]);
            prop_assert!(
                noisy_loss.loss_n(&single).abs() <= clean_loss.loss_n(&single).abs() + 1e-12
            );
        }
    }

    /// Clifford maps built from random gate sequences stay symplectic.
    #[test]
    fn random_maps_are_valid(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 5;
        let gates: Vec<CliffordGate> = (0..30).map(|_| {
            let q = rng.gen_range(0..n);
            let mut r = rng.gen_range(0..n);
            while r == q { r = rng.gen_range(0..n); }
            match rng.gen_range(0..6) {
                0 => CliffordGate::H(q),
                1 => CliffordGate::S(q),
                2 => CliffordGate::SqrtY(q),
                3 => CliffordGate::Cx(q, r),
                4 => CliffordGate::Cz(q, r),
                _ => CliffordGate::Swap(q, r),
            }
        }).collect();
        let map = CliffordMap::conjugation(n, &gates);
        prop_assert!(map.is_valid());
        let anti = CliffordMap::anticonjugation(n, &gates);
        prop_assert!(anti.is_valid());
    }

    /// Commutation structure survives transformation: if two Hamiltonian
    /// terms commute, their images commute.
    #[test]
    fn transformation_preserves_commutation(
        genome in arb_genome(TransformationAnsatz::new(4).num_genes()),
        a in proptest::collection::vec(arb_pauli(), 4),
        b in proptest::collection::vec(arb_pauli(), 4),
    ) {
        let ansatz = TransformationAnsatz::new(4);
        let map = CliffordMap::anticonjugation(4, &ansatz.gates(&genome));
        let pa = PauliString::from_sparse(4, a.into_iter().enumerate());
        let pb = PauliString::from_sparse(4, b.into_iter().enumerate());
        let (_, ia) = map.conjugate(&pa);
        let (_, ib) = map.conjugate(&pb);
        prop_assert_eq!(pa.commutes_with(&pb), ia.commutes_with(&ib));
    }
}
