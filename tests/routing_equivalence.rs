//! Transpilation soundness: routed circuits must implement the same unitary
//! as the logical circuit up to the tracked qubit permutation. Verified
//! densely by comparing logical-frame energies with compact-frame energies
//! of mapped Hamiltonians, over random circuits, layouts and topologies.

use clapton::circuits::{route_with_layout, Circuit, CouplingMap, Gate};
use clapton::pauli::{PauliString, PauliSum};
use clapton::sim::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_circuit(n: usize, len: usize, rng: &mut StdRng) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..len {
        match rng.gen_range(0..4) {
            0 => c.push(Gate::Ry(
                rng.gen_range(0..n),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )),
            1 => c.push(Gate::Rz(
                rng.gen_range(0..n),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )),
            2 => c.push(Gate::H(rng.gen_range(0..n))),
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.push(Gate::Cx(a, b));
            }
        }
    }
    c
}

fn random_layout(n_logical: usize, n_physical: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut phys: Vec<usize> = (0..n_physical).collect();
    for i in 0..n_logical {
        let j = rng.gen_range(i..n_physical);
        phys.swap(i, j);
    }
    phys[..n_logical].to_vec()
}

/// Maps a logical Pauli term to physical qubits via the final layout.
fn map_term(p: &PauliString, final_layout: &[usize], n_physical: usize) -> PauliString {
    let mut out = PauliString::identity(n_physical);
    for q in p.support() {
        out.set(final_layout[q], p.get(q));
    }
    out
}

#[test]
fn routing_preserves_energies_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(7777);
    for trial in 0..20 {
        let n_logical = rng.gen_range(2..5);
        let n_physical = rng.gen_range(n_logical..=6);
        let coupling = if rng.gen_bool(0.5) {
            CouplingMap::line(n_physical)
        } else if n_physical >= 3 {
            CouplingMap::ring(n_physical)
        } else {
            CouplingMap::line(n_physical)
        };
        let circuit = random_circuit(n_logical, 15, &mut rng);
        let layout = random_layout(n_logical, n_physical, &mut rng);
        let routed = route_with_layout(&circuit, &coupling, &layout);
        // Every two-qubit gate respects the topology.
        for g in routed.circuit.gates() {
            if g.is_two_qubit() {
                let q = g.qubits();
                assert!(coupling.are_adjacent(q[0], q[1]), "trial {trial}: {g}");
            }
        }
        // Energy equivalence for random observables.
        let logical_state = StateVector::from_circuit(&circuit);
        let physical_state = StateVector::from_circuit(&routed.circuit);
        for _ in 0..6 {
            let p = PauliString::random(n_logical, &mut rng);
            let h = PauliSum::from_terms(n_logical, vec![(1.0, p.clone())]);
            let mapped = PauliSum::from_terms(
                n_physical,
                vec![(1.0, map_term(&p, &routed.final_layout, n_physical))],
            );
            let e_logical = logical_state.energy(&h);
            let e_physical = physical_state.energy(&mapped);
            assert!(
                (e_logical - e_physical).abs() < 1e-9,
                "trial {trial}: {p} logical {e_logical} vs physical {e_physical}"
            );
        }
    }
}

#[test]
fn routing_on_heavy_hex_backends_is_sound() {
    // The real topologies: route the 10-qubit circular ansatz skeleton on
    // each 27-qubit backend and check two-qubit adjacency + permutation
    // validity of the final layout.
    use clapton::circuits::HardwareEfficientAnsatz;
    use clapton::devices::FakeBackend;
    for backend in [
        FakeBackend::toronto(),
        FakeBackend::mumbai(),
        FakeBackend::hanoi(),
    ] {
        let ansatz = HardwareEfficientAnsatz::new(10);
        let layout = clapton::circuits::chain_layout(backend.coupling_map(), 10).unwrap();
        let routed = route_with_layout(&ansatz.circuit_at_zero(), backend.coupling_map(), &layout);
        for g in routed.circuit.gates() {
            if g.is_two_qubit() {
                let q = g.qubits();
                assert!(
                    backend.coupling_map().are_adjacent(q[0], q[1]),
                    "{}: {g}",
                    backend.name()
                );
            }
        }
        let mut final_sorted = routed.final_layout.clone();
        final_sorted.sort_unstable();
        final_sorted.dedup();
        assert_eq!(final_sorted.len(), 10, "{}", backend.name());
    }
}
