//! Property tests of checkpoint/resume (alongside `evaluator_api.rs`): a
//! run interrupted after any round `k` and resumed from a serialized
//! [`EngineState`] is bit-identical to an uninterrupted run — on toy
//! fitnesses, on the real Clapton objective, and through the pooled
//! execution path. Plus the serde round-trip contract for the result types.

use clapton::circuits::TransformationAnsatz;
use clapton::core::{
    run_clapton, run_clapton_resumable, ClaptonConfig, ClaptonResult, EngineState, EvaluatorKind,
    ExecutableAnsatz, WorkerPool,
};
use clapton::ga::{FnEvaluator, GaConfig, MultiGa, MultiGaConfig, MultiGaResult};
use clapton::models::ising;
use clapton::noise::NoiseModel;
use proptest::prelude::*;
use std::sync::Arc;

/// A small engine configuration whose runs finish in a few rounds.
fn tiny_config() -> MultiGaConfig {
    MultiGaConfig {
        instances: 2,
        top_k: 4,
        max_retry_rounds: 1,
        max_rounds: 6,
        pool_fraction: 0.5,
        parallel: false,
        ga: GaConfig {
            population_size: 16,
            generations: 8,
            ..GaConfig::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Interrupting a multi-GA run after round `k`, serializing the engine
    /// state to JSON, and resuming from the parsed snapshot reproduces the
    /// uninterrupted run bit-for-bit — for any seed and interrupt point.
    #[test]
    fn multiga_resume_is_bit_identical(seed in 0u64..1_000, k in 1usize..5) {
        let engine = MultiGa::new(12, 4, tiny_config());
        let fitness = FnEvaluator::new(|g: &[u8]| {
            g.iter().enumerate().map(|(i, &x)| (x as f64 - (i % 3) as f64).abs()).sum()
        });
        let reference = engine.run(seed, &fitness);
        let mut state = engine.start(seed);
        let mut finished = false;
        for _ in 0..k.min(reference.rounds.saturating_sub(1)) {
            finished = engine.step(&mut state, &fitness);
        }
        prop_assert!(!finished, "interrupt point must be mid-run");
        let json = serde_json::to_string(&state).expect("engine state serializes");
        let mut resumed: EngineState = serde_json::from_str(&json).expect("engine state parses");
        prop_assert_eq!(&resumed, &state, "state survives the JSON round trip");
        while !engine.step(&mut resumed, &fitness) {}
        prop_assert_eq!(engine.result(&resumed), reference);
    }

    /// The pooled execution path converges to the identical result from any
    /// resume point, for any worker count.
    #[test]
    fn pooled_resume_matches_serial(seed in 0u64..1_000, workers in 0usize..3) {
        let engine = MultiGa::new(10, 4, tiny_config());
        let fitness = FnEvaluator::new(|g: &[u8]| g.iter().map(|&x| x as f64).sum());
        let reference = engine.run(seed, &fitness);
        let pool = Arc::new(WorkerPool::with_workers(workers));
        let mut state = engine.start(seed);
        engine.step_pooled(&mut state, &fitness, &pool);
        let json = serde_json::to_string(&state).expect("serializes");
        let mut resumed: EngineState = serde_json::from_str(&json).expect("parses");
        while !resumed.finished {
            engine.step_pooled(&mut resumed, &fitness, &pool);
        }
        prop_assert_eq!(engine.result(&resumed), reference);
    }
}

#[test]
fn clapton_resume_on_real_objective_is_bit_identical() {
    let h = ising(3, 0.5);
    let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
    let exec = ExecutableAnsatz::untranspiled(3, &model);
    let config = ClaptonConfig::quick(21);
    let reference = run_clapton(&h, &exec, &config);
    // Interrupt at every possible round boundary via the observer, resume
    // from a JSON round trip each time.
    let mut k = 1;
    loop {
        let mut seen = 0;
        let (state, result) = run_clapton_resumable(&h, &exec, &config, None, None, &mut |_| {
            seen += 1;
            seen < k
        });
        if let Some(result) = result {
            assert_eq!(result, reference, "uninterrupted tail at k={k}");
            break;
        }
        let json = serde_json::to_string(&state).expect("serializes");
        let restored: EngineState = serde_json::from_str(&json).expect("parses");
        let (_, resumed) =
            run_clapton_resumable(&h, &exec, &config, None, Some(restored), &mut |_| true);
        assert_eq!(
            resumed.expect("resumed run converges"),
            reference,
            "interrupted at round {k}"
        );
        k += 1;
    }
    assert!(k > 1, "at least one interrupt point exercised");
}

#[test]
fn multiga_result_round_trips_through_json() {
    let engine = MultiGa::new(12, 4, tiny_config());
    let fitness = FnEvaluator::new(|g: &[u8]| g.iter().map(|&x| x as f64).sum());
    let result = engine.run(5, &fitness);
    let json = serde_json::to_string(&result).expect("MultiGaResult serializes");
    let parsed: MultiGaResult = serde_json::from_str(&json).expect("MultiGaResult parses");
    assert_eq!(parsed, result);
    // Derived diagnostics survive too.
    assert_eq!(parsed.fitness_requests(), result.fitness_requests());
    assert_eq!(parsed.cache_hit_rate(), result.cache_hit_rate());
}

#[test]
fn clapton_result_round_trips_through_json() {
    let h = ising(3, 1.0);
    let model = NoiseModel::uniform(3, 1e-3, 1e-2, 2e-2);
    let exec = ExecutableAnsatz::untranspiled(3, &model);
    let result = run_clapton(&h, &exec, &ClaptonConfig::quick(2));
    let json = serde_json::to_string_pretty(&result).expect("ClaptonResult serializes");
    let parsed: ClaptonResult = serde_json::from_str(&json).expect("ClaptonResult parses");
    assert_eq!(parsed, result);
    // The transformation genome refers to the same ansatz after the trip.
    assert_eq!(parsed.ansatz, TransformationAnsatz::new(3));
    assert_eq!(parsed.transformation.gamma.len(), parsed.ansatz.num_genes());
    // Double round trip is stable byte-for-byte.
    assert_eq!(serde_json::to_string_pretty(&parsed).unwrap(), json);
}

#[test]
fn sampled_backend_checkpoints_identically() {
    // The stim-style sampled loss re-seeds per candidate; resume must not
    // disturb its streams either.
    let h = ising(2, 0.5);
    let model = NoiseModel::uniform(2, 5e-3, 2e-2, 2e-2);
    let exec = ExecutableAnsatz::untranspiled(2, &model);
    let mut config = ClaptonConfig::quick(13);
    config.evaluator = EvaluatorKind::Sampled { shots: 32, seed: 3 };
    let reference = run_clapton(&h, &exec, &config);
    let (state, early) = run_clapton_resumable(&h, &exec, &config, None, None, &mut |_| false);
    assert!(early.is_none());
    let json = serde_json::to_string(&state).expect("serializes");
    let restored: EngineState = serde_json::from_str(&json).expect("parses");
    let (_, resumed) =
        run_clapton_resumable(&h, &exec, &config, None, Some(restored), &mut |_| true);
    assert_eq!(resumed.expect("converges"), reference);
}
