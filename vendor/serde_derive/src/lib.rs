//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace uses — structs with named fields, and enums with
//! unit or tuple variants — without `syn`/`quote` (the build has no network
//! access). Input is parsed by walking the token tree directly; output is
//! generated as source text and re-parsed into a `TokenStream`.
//!
//! Wire format matches serde/serde_json defaults: structs are maps keyed by
//! field name; enums are externally tagged (`"Unit"`, `{"Tuple1": value}`,
//! `{"TupleN": [values…]}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Input {
    /// Struct name + named fields.
    Struct(String, Vec<String>),
    /// Enum name + `(variant, arity)` pairs (`arity == 0` means unit).
    Enum(String, Vec<(String, usize)>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct(name, fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push(({f:?}.to_string(), serde::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize<S: serde::Serializer>(&self, serializer: S) \
                 -> Result<S::Ok, S::Error> {{\n\
                 let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\
                 serializer.serialize_value(serde::Value::Map(__fields))\n\
                 }}\n}}"
            )
        }
        Input::Enum(name, variants) => {
            let mut arms = String::new();
            for (v, arity) in variants {
                match arity {
                    0 => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::Str({v:?}.to_string()),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{v}(__f0) => serde::Value::Map(vec![({v:?}.to_string(), \
                         serde::to_value(__f0))]),\n"
                    )),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => serde::Value::Map(vec![({v:?}.to_string(), \
                             serde::Value::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            values.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize<S: serde::Serializer>(&self, serializer: S) \
                 -> Result<S::Ok, S::Error> {{\n\
                 let __value = match self {{\n{arms}}};\n\
                 serializer.serialize_value(__value)\n\
                 }}\n}}"
            )
        }
    };
    code.parse().expect("derived Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct(name, fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: serde::take_field(&mut __map, {f:?})\
                     .map_err(serde::de::Error::custom)?,\n"
                ));
            }
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) \
                 -> Result<Self, D::Error> {{\n\
                 let mut __map = match deserializer.take_value()? {{\n\
                 serde::Value::Map(m) => m,\n\
                 other => return Err(serde::de::Error::custom(format!(\n\
                 \"expected map for struct {name}, found {{other:?}}\"))),\n\
                 }};\n\
                 Ok({name} {{\n{inits}}})\n\
                 }}\n}}"
            )
        }
        Input::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, arity) in variants {
                match arity {
                    0 => unit_arms.push_str(&format!("{v:?} => Ok({name}::{v}),\n")),
                    1 => tagged_arms.push_str(&format!(
                        "{v:?} => Ok({name}::{v}(serde::from_value(__content)\
                         .map_err(serde::de::Error::custom)?)),\n"
                    )),
                    n => {
                        let takes: Vec<String> = (0..*n)
                            .map(|_| {
                                "serde::from_value(__it.next().expect(\"checked len\"))\
                                 .map_err(serde::de::Error::custom)?"
                                    .to_string()
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{v:?} => {{\n\
                             let __seq = match __content {{\n\
                             serde::Value::Seq(s) => s,\n\
                             other => return Err(serde::de::Error::custom(format!(\n\
                             \"variant {v} expects a sequence, found {{other:?}}\"))),\n\
                             }};\n\
                             if __seq.len() != {n} {{\n\
                             return Err(serde::de::Error::custom(\
                             \"wrong tuple arity for variant {v}\"));\n\
                             }}\n\
                             let mut __it = __seq.into_iter();\n\
                             Ok({name}::{v}({}))\n\
                             }}\n",
                            takes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) \
                 -> Result<Self, D::Error> {{\n\
                 match deserializer.take_value()? {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(serde::de::Error::custom(format!(\n\
                 \"unknown unit variant {{other}} for enum {name}\"))),\n\
                 }},\n\
                 serde::Value::Map(mut __m) if __m.len() == 1 => {{\n\
                 let (__tag, __content) = __m.remove(0);\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err(serde::de::Error::custom(format!(\n\
                 \"unknown variant {{other}} for enum {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(serde::de::Error::custom(format!(\n\
                 \"expected externally tagged enum {name}, found {{other:?}}\"))),\n\
                 }}\n\
                 }}\n}}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Token-level parsing of the deriving item.
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    // Generic parameters are unsupported (nothing in the workspace derives
    // serde on generic types).
    let body = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde_derive stub does not support generic types")
            }
            _ => i += 1,
        }
    };
    match kind.as_str() {
        "struct" => Input::Struct(name, parse_struct_fields(body)),
        "enum" => Input::Enum(name, parse_enum_variants(body)),
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero
        // (parenthesized types are single Group tokens, so only `<`/`>`
        // nesting needs tracking).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(body: TokenStream) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = tuple_arity(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde_derive stub does not support struct enum variants")
                }
                _ => {}
            }
        }
        variants.push((name, arity));
        // Skip to the next variant (past the separating comma).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

/// Number of fields in a tuple-variant payload: top-level commas + 1.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut commas = 0;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    commas + 1 - usize::from(trailing_comma)
}
