//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256** with SplitMix64
/// seeding. Deterministic and portable; not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The raw generator state (for checkpointing; restore with
    /// [`StdRng::from_state`]).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from a [`StdRng::state`] snapshot, resuming
    /// the stream bit-identically.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which xoshiro256** cannot leave.
    pub fn from_state(s: [u64; 4]) -> StdRng {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> StdRng {
        // SplitMix64 expansion of the 64-bit seed into the full state,
        // guaranteeing a non-zero state for any seed.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
