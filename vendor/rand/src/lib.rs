//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal, dependency-free implementation of the `rand` 0.8 API surface it
//! consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256**, seeded through SplitMix64 — deterministic,
//! portable, and of ample statistical quality for the genetic searches and
//! Monte Carlo samplers in this repository. Streams differ from the real
//! `rand::rngs::StdRng` (ChaCha12); nothing in the workspace depends on the
//! exact stream, only on seeded determinism.

pub mod rngs;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable between two bounds (the `SampleUniform` of the
/// real crate).
pub trait UniformSample: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = hi as i128 - lo as i128 + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                (lo as i128 + (rng.next_u64() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * unit;
                // `lo + (hi - lo) * unit` can round up to `hi`; keep the
                // half-open contract of the real crate.
                if v < hi {
                    v
                } else {
                    hi.next_down().max(lo)
                }
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges samplable into a value of type `T`.
///
/// Implemented generically over [`UniformSample`] (one impl per range shape,
/// not per element type) so integer-literal inference flows through
/// `gen_range` exactly as with the real crate.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: UniformSample> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniform sample of `T` (`bool`, integers, unit-interval floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(2usize..7);
            assert!((2..7).contains(&v));
            seen[v] = true;
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&i));
        }
        assert!(seen[2..7].iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_never_yield_the_excluded_bound() {
        // hi - lo small relative to ulp(lo): naive lerp rounds up to hi.
        let mut rng = StdRng::seed_from_u64(13);
        let (lo, hi) = (1e16f64, 1e16 + 4.0);
        for _ in 0..10_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "v = {v}");
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn uniform_ints_cover_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!(c > 700, "counts {counts:?}");
        }
    }
}
