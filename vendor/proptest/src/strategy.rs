//! Strategies: composable random-value generators.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A generator of random values for property tests.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a cloneable sampler.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        S: Strategy,
        F: Fn(Self::Value) -> S + Clone,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U + Clone> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T + Clone> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Union<S> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// String strategies from a regex-like pattern literal.
///
/// Supports the subset used in this workspace: literal characters, `[...]`
/// character classes, and `{m}` / `{m,n}` repetition counts (plus `?`, `+`,
/// `*` with small bounded repetition). Anything fancier panics loudly.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let class: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                    + i;
                let inner = &chars[i + 1..close];
                i = close + 1;
                expand_class(inner, pattern)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                vec![c]
            }
            c => {
                assert!(
                    !"(){}|.^$*+?".contains(c),
                    "unsupported regex feature {c:?} in pattern {pattern:?}"
                );
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(class[rng.gen_range(0..class.len())]);
        }
    }
    out
}

fn expand_class(inner: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !inner.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    let mut out = Vec::new();
    let mut i = 0;
    while i < inner.len() {
        if i + 2 < inner.len() && inner[i + 1] == '-' {
            let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
            assert!(lo <= hi, "inverted range in class of pattern {pattern:?}");
            for c in lo..=hi {
                out.push(char::from_u32(c).expect("valid class char"));
            }
            i += 3;
        } else {
            out.push(inner[i]);
            i += 1;
        }
    }
    out
}
