//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: an exact size or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec length range");
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
