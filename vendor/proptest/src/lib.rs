//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small property-testing harness that is API-compatible with the repo's
//! tests: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! regex-literal strategies, [`collection::vec`], [`Just`], `prop_oneof!`,
//! and the `proptest! { ... }` test macro with `prop_assert!`-style checks.
//!
//! Differences from real proptest: inputs are sampled from a deterministic
//! per-test stream (derived from the test name and case index) and failures
//! are **not shrunk** — the failing case is reported as-is.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

/// Harness configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 48 }
    }
}

/// Builds the deterministic RNG for one test case (macro support).
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(seed ^ ((case as u64) << 32 | case as u64))
}

/// The commonly imported surface.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)*
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Picks uniformly among several strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = crate::case_rng("bounds", 0);
        for _ in 0..200 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(-1.0..1.0f64), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let xs = Strategy::sample(&crate::collection::vec(0u8..4, 1..6), &mut rng);
            assert!((1..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn regex_literal_strategy_matches_class_and_counts() {
        let mut rng = crate::case_rng("regex", 1);
        for _ in 0..100 {
            let s = Strategy::sample(&"[IXYZ]{1,80}", &mut rng);
            assert!((1..=80).contains(&s.len()));
            assert!(s.chars().all(|c| "IXYZ".contains(c)));
        }
    }

    #[test]
    fn map_flat_map_and_oneof_compose() {
        let pair = (1usize..5).prop_flat_map(|n| {
            let item = prop_oneof![Just(0u8), Just(1u8)].prop_map(|x| x + 1);
            crate::collection::vec(item, n)
        });
        let mut rng = crate::case_rng("compose", 2);
        for _ in 0..50 {
            let v = Strategy::sample(&pair, &mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u8..10, 0u8..10), c in 0usize..4) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(c.min(3), c, "c = {}", c);
        }
    }
}
