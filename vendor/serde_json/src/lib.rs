//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], speaking the same
//! JSON wire format as the real crate for the vendored serde's data model.

use serde::{de::DeserializeOwned, Serialize, Value, ValueDeserializer};
use std::fmt;

/// A JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        at: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.at != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.at
        )));
    }
    T::deserialize(ValueDeserializer(value)).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_f64(*v, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                write_break(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_break(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips, always
        // with a decimal point or exponent — matching serde_json's output
        // closely enough for this workspace.
        out.push_str(&format!("{v:?}"));
    } else {
        // Real serde_json errors on non-finite floats; keep reads total.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.at
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.at
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.at)))
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at {}", self.at))),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at {}", self.at))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.at += 4;
                        }
                        other => {
                            return Err(Error(format!("invalid escape {other:?}")));
                        }
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::Int(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::UInt(v))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("8e-5").unwrap(), 8e-5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_output_round_trips_exactly() {
        for v in [0.1, 1.0 / 3.0, 8e-5, -2.5e17, 1e-300] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v, "{json}");
        }
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(usize, usize)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
    }
}
