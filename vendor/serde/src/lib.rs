//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal serialization framework that is API-compatible with the calls the
//! repository makes: `#[derive(Serialize, Deserialize)]` on plain structs and
//! tuple-variant enums, hand-written impls via [`Serializer::serialize_str`]
//! and `String::deserialize`, and `serde_json`'s `to_string` /
//! `to_string_pretty` / `from_str`.
//!
//! Unlike real serde's visitor architecture, this stand-in routes everything
//! through an owned [`Value`] tree — a deliberate simplification that keeps
//! the vendored code small while preserving the same JSON wire format
//! (externally tagged enums, maps for structs).

use std::fmt::Display;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the data model both the derive macros
/// and `serde_json` speak).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value does not fit `i64`).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (preserves field order).
    Map(Vec<(String, Value)>),
}

/// Serialization error support.
pub mod ser {
    /// Trait every serializer error must satisfy.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization error support.
pub mod de {
    use super::Deserialize;

    /// Trait every deserializer error must satisfy.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        /// Builds an error from a message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Marker for types deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

/// The concrete error used by [`to_value`] / [`from_value`].
#[derive(Debug, Clone, PartialEq)]
pub struct ValueError(pub String);

impl Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: Display>(msg: T) -> ValueError {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: Display>(msg: T) -> ValueError {
        ValueError(msg.to_string())
    }
}

/// A type that can serialize itself into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for serialized values.
pub trait Serializer: Sized {
    /// The output of successful serialization.
    type Ok;
    /// The error type.
    type Error: ser::Error;

    /// Consumes a fully-built value tree (the only required method).
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_string()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Int(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::UInt(v))
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Float(v))
    }
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A source of serialized values.
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: de::Error;

    /// Surrenders the underlying value tree (the only required method).
    fn take_value(self) -> Result<Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// Value-backed serializer / deserializer.
// ---------------------------------------------------------------------------

/// Serializer producing a [`Value`] tree.
#[derive(Debug, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer reading from a [`Value`] tree.
#[derive(Debug)]
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn take_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Serializes any value into a [`Value`] tree.
///
/// # Panics
///
/// Never panics: [`ValueSerializer`] is infallible.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value
        .serialize(ValueSerializer)
        .expect("ValueSerializer is infallible")
}

/// Deserializes any owned type from a [`Value`] tree.
pub fn from_value<T: de::DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

/// Removes field `name` from a struct map and deserializes it (support
/// routine for the derive macro).
pub fn take_field<T: de::DeserializeOwned>(
    map: &mut Vec<(String, Value)>,
    name: &str,
) -> Result<T, ValueError> {
    let at = map
        .iter()
        .position(|(k, _)| k == name)
        .ok_or_else(|| ValueError(format!("missing field `{name}`")))?;
    let (_, v) = map.remove(at);
    from_value(v).map_err(|e| ValueError(format!("field `{name}`: {e}")))
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                if (*self as i128) < 0 {
                    serializer.serialize_i64(*self as i64)
                } else if (*self as u128) <= u64::MAX as u128 {
                    serializer.serialize_u64(*self as u64)
                } else {
                    serializer.serialize_i64(*self as i64)
                }
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Seq(self.iter().map(|v| to_value(v)).collect()))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Seq(self.iter().map(|v| to_value(v)).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Seq(vec![to_value(&self.0), to_value(&self.1)]))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Seq(vec![
            to_value(&self.0),
            to_value(&self.1),
            to_value(&self.2),
        ]))
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitives and containers.
// ---------------------------------------------------------------------------

fn number_as_f64(value: &Value) -> Option<f64> {
    match *value {
        Value::Int(v) => Some(v as f64),
        Value::UInt(v) => Some(v as f64),
        Value::Float(v) => Some(v),
        _ => None,
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                use crate::de::Error as _;
                let value = deserializer.take_value()?;
                let wide: i128 = match value {
                    Value::Int(v) => v as i128,
                    Value::UInt(v) => v as i128,
                    Value::Float(v) if v.fract() == 0.0 => v as i128,
                    other => {
                        return Err(D::Error::custom(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| D::Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use crate::de::Error as _;
        match deserializer.take_value()? {
            Value::Bool(v) => Ok(v),
            other => Err(D::Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use crate::de::Error as _;
        let value = deserializer.take_value()?;
        number_as_f64(&value)
            .ok_or_else(|| D::Error::custom(format!("expected number, found {value:?}")))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use crate::de::Error as _;
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(format!(
                "expected string, found {other:?}"
            ))),
        }
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use crate::de::Error as _;
        match deserializer.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| from_value(v).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<'de, T: de::DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use crate::de::Error as _;
        let items = Vec::<T>::deserialize(deserializer)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format!("expected {N}-element array, found {got}")))
    }
}

impl<'de, T: de::DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use crate::de::Error as _;
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => from_value(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de, A: de::DeserializeOwned, B: de::DeserializeOwned> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use crate::de::Error as _;
        match deserializer.take_value()? {
            Value::Seq(items) if items.len() == 2 => {
                let mut it = items.into_iter();
                Ok((
                    from_value(it.next().expect("len 2")).map_err(D::Error::custom)?,
                    from_value(it.next().expect("len 2")).map_err(D::Error::custom)?,
                ))
            }
            other => Err(D::Error::custom(format!(
                "expected 2-element array, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        assert_eq!(from_value::<u32>(to_value(&7u32)), Ok(7));
        assert_eq!(from_value::<f64>(to_value(&2.5f64)), Ok(2.5));
        assert_eq!(from_value::<bool>(to_value(&true)), Ok(true));
        assert_eq!(from_value::<String>(to_value("hi")), Ok("hi".to_string()));
        assert_eq!(
            from_value::<Vec<(usize, usize)>>(to_value(&vec![(1usize, 2usize)])),
            Ok(vec![(1, 2)])
        );
    }

    #[test]
    fn take_field_reports_missing() {
        let mut map = vec![("a".to_string(), Value::Int(1))];
        assert_eq!(take_field::<i64>(&mut map, "a"), Ok(1));
        assert!(take_field::<i64>(&mut map, "b").is_err());
    }

    #[test]
    fn ints_refuse_lossy_conversions() {
        assert!(from_value::<u8>(Value::Int(300)).is_err());
        assert!(from_value::<u32>(Value::Str("x".into())).is_err());
    }
}
