//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides the structural API (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`) with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//! Each benchmark reports its median iteration time on stdout and appends a
//! JSON record to `target/bench-results.json` (via the `BENCH_OUTPUT`
//! environment variable override) so results can be tracked across runs.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made from one parameter value.
    pub fn from_parameter<D: Display>(parameter: D) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id made from a function name and a parameter value.
    pub fn new<D: Display>(function: &str, parameter: D) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.into());
        self
    }

    /// Runs a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Runs and times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

/// Total wall-clock budget per benchmark; keeps `cargo bench` bounded even
/// for slow routines.
const TIME_BUDGET: Duration = Duration::from_secs(2);

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches/allocators).
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples collected");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let best = sorted[0];
        println!(
            "{group}/{id}: median {} (best {}, {} samples)",
            format_duration(median),
            format_duration(best),
            sorted.len()
        );
        append_json_record(group, id, median, best, sorted.len());
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Default output: `BENCH_results.json` at the repository root (benches run
/// with the package directory as CWD, so walk up to the `.git` marker).
fn default_output_path() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        if dir.join(".git").exists() {
            return dir.join("BENCH_results.json");
        }
        if !dir.pop() {
            return std::path::PathBuf::from("BENCH_results.json");
        }
    }
}

/// The results file every record is appended to: the `BENCH_OUTPUT`
/// environment variable, or `BENCH_results.json` at the repository root.
///
/// Public so benches that measure outside `Bencher::iter` (interleaved
/// comparisons, derived metrics) land rows in the same file.
pub fn output_path() -> std::path::PathBuf {
    std::env::var("BENCH_OUTPUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| default_output_path())
}

/// Appends one raw JSONL line to [`output_path`], creating parent
/// directories as needed.
pub fn append_line(line: &str) {
    use std::io::Write as _;
    let path = output_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(file, "{line}");
    }
}

/// Appends one record in the standard row format.
pub fn append_record(group: &str, id: &str, median_ns: u128, best_ns: u128, samples: usize) {
    append_line(&format!(
        "{{\"group\":\"{group}\",\"id\":\"{id}\",\"median_ns\":{median_ns},\"best_ns\":{best_ns},\"samples\":{samples}}}"
    ));
}

fn append_json_record(group: &str, id: &str, median: Duration, best: Duration, samples: usize) {
    append_record(group, id, median.as_nanos(), best.as_nanos(), samples);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
