//! Chemistry study: compare CAFQA, nCAFQA and Clapton initializations for a
//! molecular Hamiltonian (the H2O surrogate) at equilibrium and stretched
//! bond lengths, on the `toronto` fake backend.
//!
//! ```sh
//! cargo run --release --example molecule_study
//! ```

use clapton::core::{
    relative_improvement, run_cafqa, run_clapton, run_ncafqa, ClaptonConfig, EvaluatorKind,
    ExecutableAnsatz,
};
use clapton::devices::FakeBackend;
use clapton::ga::MultiGaConfig;
use clapton::models::{molecular, Molecule};
use clapton::sim::{ground_energy, DeviceEvaluator};

fn main() {
    let backend = FakeBackend::toronto();
    println!(
        "backend: {} ({} qubits, mean 2q error {:.1e}, mean readout {:.1e})",
        backend.name(),
        backend.num_qubits(),
        backend.calibration().mean_p2(),
        backend.calibration().mean_readout()
    );
    for bond_length in Molecule::H2O.bond_lengths() {
        let h = molecular(Molecule::H2O, bond_length);
        let e0 = ground_energy(&h);
        println!(
            "\n=== H2O at l = {bond_length} Å ({} terms, E0 = {:.5}) ===",
            h.num_terms(),
            e0
        );
        let exec = ExecutableAnsatz::on_device(
            h.num_qubits(),
            backend.coupling_map(),
            &backend.noise_model(),
        )
        .expect("toronto hosts ten qubits");
        let engine = MultiGaConfig::quick();
        let device_energy = |h_eval: &clapton::pauli::PauliSum, theta: &[f64]| {
            let circuit = exec.circuit(theta);
            DeviceEvaluator::run(&circuit, exec.noise_model()).energy(&exec.map_hamiltonian(h_eval))
        };
        let zeros = vec![0.0; exec.ansatz().num_parameters()];

        let cafqa = run_cafqa(&h, &exec, &engine, 0);
        let e_cafqa = device_energy(&h, &cafqa.theta);
        println!(
            "CAFQA   : noiseless {:+.5}, device {:+.5}",
            cafqa.energy_noiseless, e_cafqa
        );

        let ncafqa = run_ncafqa(&h, &exec, &engine, EvaluatorKind::Exact, 1);
        let e_ncafqa = device_energy(&h, &ncafqa.theta);
        println!(
            "nCAFQA  : noiseless {:+.5}, device {:+.5}",
            ncafqa.energy_noiseless, e_ncafqa
        );

        let clapton = run_clapton(&h, &exec, &ClaptonConfig::quick(2));
        let e_clapton = device_energy(&clapton.transformation.transformed, &zeros);
        println!(
            "Clapton : noiseless {:+.5}, device {:+.5}",
            clapton.loss_0, e_clapton
        );

        println!(
            "eta vs CAFQA = {:.2}x, eta vs nCAFQA = {:.2}x",
            relative_improvement(e0, e_cafqa, e_clapton),
            relative_improvement(e0, e_ncafqa, e_clapton)
        );
    }
}
