//! Device tour: the same physics problem initialized with Clapton on every
//! fake backend, showing how the transformation adapts to each machine's
//! calibration — and what happens when the real hardware deviates from the
//! calibration snapshot (the `hanoi` experiment of §6.1).
//!
//! ```sh
//! cargo run --release --example device_noise_tour
//! ```

use clapton::core::{
    relative_improvement, run_cafqa, run_clapton, ClaptonConfig, ExecutableAnsatz,
};
use clapton::devices::FakeBackend;
use clapton::ga::MultiGaConfig;
use clapton::models::ising;
use clapton::sim::{ground_energy, DeviceEvaluator};

fn main() {
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>8} {:>14}",
        "backend", "N", "E_CAFQA(x)", "E_Clapton(x)", "eta", "E_Clapton(hw*)"
    );
    for backend in FakeBackend::all() {
        // nairobi is a 7-qubit device; the rest host 10 qubits.
        let n = if backend.num_qubits() < 10 { 7 } else { 10 };
        let h = ising(n, 0.5);
        let e0 = ground_energy(&h);
        let exec = ExecutableAnsatz::on_device(n, backend.coupling_map(), &backend.noise_model())
            .expect("backend hosts the chain");
        let zeros = vec![0.0; exec.ansatz().num_parameters()];
        let device_energy =
            |h_eval: &clapton::pauli::PauliSum, theta: &[f64], exec_eval: &ExecutableAnsatz| {
                let circuit = exec_eval.circuit(theta);
                DeviceEvaluator::run(&circuit, exec_eval.noise_model())
                    .energy(&exec_eval.map_hamiltonian(h_eval))
            };
        let cafqa = run_cafqa(&h, &exec, &MultiGaConfig::quick(), 0);
        let e_cafqa = device_energy(&h, &cafqa.theta, &exec);
        let clapton = run_clapton(&h, &exec, &ClaptonConfig::quick(1));
        let e_clapton = device_energy(&clapton.transformation.transformed, &zeros, &exec);
        // Evaluate the same transformation on the perturbed hardware variant
        // (the calibration/device discrepancy).
        let hw = backend.hardware_variant(99);
        let exec_hw = ExecutableAnsatz::on_device(n, hw.coupling_map(), &hw.noise_model())
            .expect("hardware variant hosts the chain");
        let e_clapton_hw = device_energy(&clapton.transformation.transformed, &zeros, &exec_hw);
        println!(
            "{:<10} {:>8} {:>12.5} {:>12.5} {:>8.2} {:>14.5}",
            backend.name(),
            n,
            e_cafqa,
            e_clapton,
            relative_improvement(e0, e_cafqa, e_clapton),
            e_clapton_hw
        );
    }
    println!("\nhw* = nominal-calibration transformation evaluated under perturbed hardware noise");
}
