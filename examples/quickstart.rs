//! Quickstart (object tour): run Clapton on a small transverse-field Ising
//! problem and a uniform noise model, and inspect what the transformation
//! buys — hand-wiring each object along the way.
//!
//! For the recommended entry point — the same run submitted as one
//! serializable `JobSpec` through `ClaptonService` — see
//! `examples/service_submit.rs`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clapton::circuits::TransformationAnsatz;
use clapton::core::{
    run_clapton, CachedEvaluator, ClaptonConfig, EvaluatorKind, ExecutableAnsatz, LossEvaluator,
    LossFunction, ParallelEvaluator, TransformLoss,
};
use clapton::models::ising;
use clapton::noise::NoiseModel;
use clapton::sim::ground_energy;

fn main() {
    // 1. A VQE problem: the 6-qubit transverse-field Ising chain.
    let n = 6;
    let h = ising(n, 0.5);
    println!(
        "problem: 6-qubit Ising (J = 0.5), {} Pauli terms",
        h.num_terms()
    );
    println!("exact ground energy E0 = {:.6}", ground_energy(&h));

    // 2. A device noise model: depolarizing gate errors + readout flips.
    let mut model = NoiseModel::uniform(n, 1e-3, 1e-2, 2.5e-2);
    model.set_t1_uniform(100e-6);
    let exec = ExecutableAnsatz::untranspiled(n, &model);

    // 3. Without Clapton: the VQE initial point θ = 0 evaluates H on |0…0⟩.
    let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
    println!("\nuntransformed initial point:");
    println!("  L0 (noiseless)      = {:+.6}", loss.loss_0(&h));
    println!("  LN (Clifford noise) = {:+.6}", loss.loss_n(&h));

    // 4. The search objective is a first-class object: `TransformLoss`
    //    implements the batched `LossEvaluator` trait, so populations can be
    //    scored in one call — and wrapped for thread-parallel or memoized
    //    evaluation without touching the loss itself.
    let ansatz = TransformationAnsatz::new(n);
    let objective = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
    let identity = vec![0u8; ansatz.num_genes()];
    let batch = objective.evaluate_population(&[identity.clone(), identity]);
    println!("\nbatched objective at the identity genome: {batch:?}");
    let stacked = CachedEvaluator::new(ParallelEvaluator::new(&objective));
    stacked.evaluate(&vec![0u8; ansatz.num_genes()]);
    stacked.evaluate(&vec![0u8; ansatz.num_genes()]);
    println!(
        "cache after two identical evaluations: {} hit / {} miss",
        stacked.stats().hits,
        stacked.stats().misses
    );

    // 5. Run Clapton: search Clifford transformations Ĥ = C†(γ)HC(γ) that
    //    make |0…0⟩ a good, noise-robust starting state. The engine stacks
    //    exactly the wrappers above over this objective internally.
    let result = run_clapton(&h, &exec, &ClaptonConfig::quick(42));
    println!(
        "\nClapton transformation found in {} engine rounds:",
        result.rounds
    );
    println!("  L0 (noiseless)      = {:+.6}", result.loss_0);
    println!("  LN (Clifford noise) = {:+.6}", result.loss_n);
    println!("  total loss          = {:+.6}", result.loss);
    println!(
        "  loss evaluations    = {} unique (+{} cache hits, {:.0}% hit rate)",
        result.unique_evaluations,
        result.cache_hits,
        100.0 * result.cache_hits as f64
            / (result.cache_hits + result.unique_evaluations).max(1) as f64
    );

    // 6. The transformation preserves the problem: same ground energy.
    let e0_transformed = ground_energy(&result.transformation.transformed);
    println!(
        "\nspectrum preserved: E0(Ĥ) = {:.6} (Δ = {:.2e})",
        e0_transformed,
        (e0_transformed - ground_energy(&h)).abs()
    );
    println!(
        "the post-Clapton VQE starts at θ = 0 with energy {:+.4} instead of {:+.4}",
        result.loss_0,
        loss.loss_0(&h)
    );
}
