//! Quickstart: run Clapton on a small transverse-field Ising problem and a
//! uniform noise model, and inspect what the transformation buys.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clapton::core::{run_clapton, ClaptonConfig, EvaluatorKind, ExecutableAnsatz, LossFunction};
use clapton::models::ising;
use clapton::noise::NoiseModel;
use clapton::sim::ground_energy;

fn main() {
    // 1. A VQE problem: the 6-qubit transverse-field Ising chain.
    let n = 6;
    let h = ising(n, 0.5);
    println!("problem: 6-qubit Ising (J = 0.5), {} Pauli terms", h.num_terms());
    println!("exact ground energy E0 = {:.6}", ground_energy(&h));

    // 2. A device noise model: depolarizing gate errors + readout flips.
    let mut model = NoiseModel::uniform(n, 1e-3, 1e-2, 2.5e-2);
    model.set_t1_uniform(100e-6);
    let exec = ExecutableAnsatz::untranspiled(n, &model);

    // 3. Without Clapton: the VQE initial point θ = 0 evaluates H on |0…0⟩.
    let loss = LossFunction::new(&exec, EvaluatorKind::Exact);
    println!("\nuntransformed initial point:");
    println!("  L0 (noiseless)      = {:+.6}", loss.loss_0(&h));
    println!("  LN (Clifford noise) = {:+.6}", loss.loss_n(&h));

    // 4. Run Clapton: search Clifford transformations Ĥ = C†(γ)HC(γ) that
    //    make |0…0⟩ a good, noise-robust starting state.
    let result = run_clapton(&h, &exec, &ClaptonConfig::quick(42));
    println!("\nClapton transformation found in {} engine rounds:", result.rounds);
    println!("  L0 (noiseless)      = {:+.6}", result.loss_0);
    println!("  LN (Clifford noise) = {:+.6}", result.loss_n);
    println!("  total loss          = {:+.6}", result.loss);

    // 5. The transformation preserves the problem: same ground energy.
    let e0_transformed = ground_energy(&result.transformation.transformed);
    println!(
        "\nspectrum preserved: E0(Ĥ) = {:.6} (Δ = {:.2e})",
        e0_transformed,
        (e0_transformed - ground_energy(&h)).abs()
    );
    println!(
        "the post-Clapton VQE starts at θ = 0 with energy {:+.4} instead of {:+.4}",
        result.loss_0,
        loss.loss_0(&h)
    );
}
