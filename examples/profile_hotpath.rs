//! Ad-hoc breakdown of the per-genome loss-evaluation cost (dev aid).

use clapton::circuits::TransformationAnsatz;
use clapton::core::{EvaluatorKind, ExecutableAnsatz, LossEvaluator, TransformLoss};
use clapton::models::ising;
use clapton::noise::NoiseModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let n = 10;
    let h = ising(n, 0.25);
    let model = NoiseModel::uniform(n, 3e-4, 8e-3, 2e-2);
    let exec = ExecutableAnsatz::untranspiled(n, &model);
    let ansatz = TransformationAnsatz::new(n);
    let loss = TransformLoss::new(&h, &exec, &ansatz, EvaluatorKind::Exact);
    let mut rng = StdRng::seed_from_u64(17);
    let population: Vec<Vec<u8>> = (0..96)
        .map(|_| {
            (0..ansatz.num_genes())
                .map(|_| rng.gen_range(0..4u8))
                .collect()
        })
        .collect();

    let reps = 20;

    let t = Instant::now();
    for _ in 0..reps {
        for g in &population {
            black_box(loss.evaluate(black_box(g)));
        }
    }
    let full = t.elapsed().as_nanos() / (reps * population.len()) as u128;

    let t = Instant::now();
    for _ in 0..reps {
        black_box(loss.evaluate_population(black_box(&population)));
    }
    let batch = t.elapsed().as_nanos() / (reps * population.len()) as u128;

    let t = Instant::now();
    for _ in 0..reps {
        for g in &population {
            black_box(loss.transformed(black_box(g)));
        }
    }
    let transform = t.elapsed().as_nanos() / (reps * population.len()) as u128;

    let t = Instant::now();
    for _ in 0..reps {
        for g in &population {
            black_box(ansatz.gates(black_box(g)));
        }
    }
    let gates = t.elapsed().as_nanos() / (reps * population.len()) as u128;

    // NoisyCircuit construction for the fixed zero circuit.
    let zero = exec.circuit_at_zero();
    let t = Instant::now();
    for _ in 0..(reps * population.len()) {
        black_box(
            clapton::noise::NoisyCircuit::from_circuit(black_box(&zero), exec.noise_model())
                .unwrap(),
        );
    }
    let noisy_build = t.elapsed().as_nanos() / (reps * population.len()) as u128;

    // Back-prop energy with a prebuilt evaluator.
    let noisy = clapton::noise::NoisyCircuit::from_circuit(&zero, exec.noise_model()).unwrap();
    let eval = clapton::noise::ExactEvaluator::new(&noisy);
    let transformed = loss.transformed(&population[0]);
    let mapped = exec.map_hamiltonian(&transformed);
    let t = Instant::now();
    for _ in 0..(reps * population.len()) {
        black_box(eval.energy(black_box(&mapped)));
    }
    let energy = t.elapsed().as_nanos() / (reps * population.len()) as u128;

    let t = Instant::now();
    for _ in 0..(reps * population.len()) {
        black_box(exec.map_hamiltonian(black_box(&transformed)));
    }
    let map_h = t.elapsed().as_nanos() / (reps * population.len()) as u128;

    let t = Instant::now();
    for _ in 0..(reps * population.len()) {
        black_box(black_box(&transformed).expectation_all_zeros());
    }
    let loss0 = t.elapsed().as_nanos() / (reps * population.len()) as u128;

    println!("full evaluate      : {full:>8} ns/genome");
    println!("batch evaluate     : {batch:>8} ns/genome");
    println!("  transformed()    : {transform:>8} ns  (gates: {gates} ns)");
    println!("  map_hamiltonian  : {map_h:>8} ns");
    println!("  NoisyCircuit     : {noisy_build:>8} ns");
    println!("  back-prop energy : {energy:>8} ns");
    println!("  loss_0           : {loss0:>8} ns");
}
