//! Spec-driven quickstart: submit a Clapton job through the declarative
//! front door instead of hand-wiring backends, noise models, and engine
//! configs (compare `examples/quickstart.rs`, which tours the underlying
//! objects this spec compiles to).
//!
//! ```sh
//! cargo run --release --example service_submit
//! cargo run --release --example service_submit -- path/to/spec.json
//! ```

use clapton::runtime::EventKind;
use clapton::service::{ClaptonService, JobSpec};

/// The whole job as data: what used to take a page of setup code is one
/// JSON document any entry point (builder, CLI, file, future daemon)
/// understands. Every omitted field keeps its default.
const SPEC: &str = r#"{
    "name": "quickstart",
    "problem": {"Suite": {"name": "ising(J=0.50)", "qubits": 6}},
    "noise": {"Uniform": {"p1": 0.001, "p2": 0.01, "readout": 0.025, "t1": 0.0001}},
    "methods": ["Cafqa", "Clapton"],
    "engine": "Quick",
    "seed": 42
}"#;

fn main() {
    // 1. A job arrives as JSON — from this string, a file argument, or any
    //    other transport.
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read spec file {path}: {e}")),
        None => SPEC.to_string(),
    };
    let spec: JobSpec = serde_json::from_str(&text).expect("spec parses");
    println!("submitting job {:?}:\n{text}", spec.display_name());

    // 2. Validation is explicit and typed: a bad registry name, a qubit
    //    mismatch, or an out-of-range rate comes back as a `SpecError`
    //    telling you exactly what to fix — no panics mid-run.
    if let Err(e) = spec.validate() {
        eprintln!("invalid spec: {e}");
        std::process::exit(2);
    }

    // 3. Submit onto the service's shared worker pool and stream progress
    //    while the searches run.
    let service = ClaptonService::new();
    let handle = service.submit(spec).expect("validated above");
    for event in handle.events() {
        match event.kind {
            EventKind::Started => println!("[{}] started", event.job),
            EventKind::Round(round, best) => {
                println!("[{}] round {round}: best loss {best:.6}", event.job)
            }
            EventKind::Finished(outcome) => println!("[{}] {outcome}", event.job),
            _ => {}
        }
    }

    // 4. One unified report across every requested method.
    let report = handle.wait().expect("job converges");
    println!("\nexact ground energy E0 = {:.6}", report.e0);
    if let (Some(cafqa), Some(clapton)) =
        (&report.cafqa_initial_energy, &report.clapton_initial_energy)
    {
        println!("CAFQA initial device energy   = {cafqa:+.6}");
        println!("Clapton initial device energy = {clapton:+.6}");
        println!(
            "eta(initial)                  = {:.3}",
            report.eta_initial.unwrap()
        );
    }
    if let Some(clapton) = &report.clapton {
        println!(
            "Clapton: loss {:+.6} in {} rounds ({} unique evaluations, {} cache hits)",
            clapton.loss, clapton.rounds, clapton.unique_evaluations, clapton.cache_hits
        );
    }

    // 5. Warm resubmission: attach an artifact registry plus the persistent
    //    content-addressed store, solve the spec once, then throw the
    //    artifacts away. A fresh service on the same root still answers the
    //    identical spec from disk — byte-for-byte the cold report — without
    //    the search ever reaching the pool.
    let root = std::env::temp_dir().join(format!("clapton-service-submit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cold_service = ClaptonService::new()
        .with_artifacts(&root)
        .expect("registry opens")
        .with_cache_under(&root)
        .expect("store opens");
    let spec: JobSpec = serde_json::from_str(&text).expect("spec parses");
    let cold = cold_service.run(spec).expect("cold run converges");
    drop(cold_service); // like a process exit: the store flushes to disk
    let job_dir = std::fs::read_dir(&root)
        .expect("registry exists")
        .map(|e| e.expect("dirent").path())
        .find(|p| {
            // The store lives in the dot-prefixed `.cache`; keep only the
            // job's artifact directory.
            p.is_dir()
                && !p
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with('.'))
        })
        .expect("the cold run left one job directory");
    std::fs::remove_dir_all(&job_dir).expect("forget the artifacts");

    let warm_service = ClaptonService::new()
        .with_artifacts(&root)
        .expect("registry opens")
        .with_cache_under(&root)
        .expect("store opens");
    let spec: JobSpec = serde_json::from_str(&text).expect("spec parses");
    let warm = warm_service.run(spec).expect("warm run answers");
    let cold_bytes = serde_json::to_string(&cold).expect("report serializes");
    let warm_bytes = serde_json::to_string(&warm).expect("report serializes");
    assert_eq!(
        cold_bytes, warm_bytes,
        "the disk-served report must be byte-identical to the cold one"
    );
    let stats = warm_service.cache().expect("store attached").stats();
    println!(
        "\nwarm resubmission answered from the persistent store \
         ({} hits, {} entries) — report byte-identical to the cold run",
        stats.hits, stats.entries
    );
    let _ = std::fs::remove_dir_all(&root);
}
