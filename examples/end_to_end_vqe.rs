//! End-to-end VQE: Clapton initialization, SPSA optimization under the full
//! device model, and recovery of the solution in the original problem frame.
//!
//! ```sh
//! cargo run --release --example end_to_end_vqe
//! ```

use clapton::circuits::Circuit;
use clapton::core::{run_clapton, ClaptonConfig, ExecutableAnsatz};
use clapton::models::xxz;
use clapton::noise::NoiseModel;
use clapton::sim::{ground_energy, StateVector};
use clapton::vqe::{run_vqe, VqeConfig};

fn main() {
    // The 6-qubit XXZ chain at J = 0.5.
    let n = 6;
    let h = xxz(n, 0.5);
    let e0 = ground_energy(&h);
    println!("problem: {n}-qubit XXZ (J = 0.5), E0 = {e0:.5}");

    let mut model = NoiseModel::uniform(n, 8e-4, 8e-3, 2e-2);
    model.set_t1_uniform(120e-6);
    let exec = ExecutableAnsatz::untranspiled(n, &model);

    // Clapton transforms the problem so θ = 0 is a good start.
    let clapton = run_clapton(&h, &exec, &ClaptonConfig::quick(7));
    let h_hat = clapton.transformation.transformed.clone();
    println!(
        "Clapton: L0 = {:+.5}, LN = {:+.5} ({} rounds)",
        clapton.loss_0, clapton.loss_n, clapton.rounds
    );

    // VQE on the transformed problem from θ = 0.
    let trace = run_vqe(
        &h_hat,
        &exec,
        &vec![0.0; exec.ansatz().num_parameters()],
        &VqeConfig::new(120),
    );
    println!(
        "VQE: device energy {:+.5} -> {:+.5} over {} SPSA iterations",
        trace.initial_energy,
        trace.final_energy,
        trace.spsa_history.len()
    );

    // Recover the solution for the ORIGINAL Hamiltonian: |ψ⟩ = Ĉ|ψ̂⟩.
    let mut recovered = Circuit::new(n);
    recovered.append(&exec.ansatz().circuit(&trace.final_theta));
    recovered.append(&clapton.transformation.recovery_circuit(&clapton.ansatz));
    let psi = StateVector::from_circuit(&recovered);
    let e_recovered = psi.energy(&h);
    let psi_hat = StateVector::from_circuit(&exec.ansatz().circuit(&trace.final_theta));
    let e_hat = psi_hat.energy(&h_hat);
    println!(
        "recovery: ⟨ψ̂|Ĥ|ψ̂⟩ = {e_hat:+.5} equals ⟨Ĉψ̂|H|Ĉψ̂⟩ = {e_recovered:+.5} (Δ = {:.1e})",
        (e_hat - e_recovered).abs()
    );
    println!(
        "noiseless solution quality: {:.1}% of the gap to E0 closed",
        100.0 * (h.identity_coefficient() - e_recovered) / (h.identity_coefficient() - e0)
    );
}
